"""Ablations of the design choices DESIGN.md calls out.

Not paper tables — these quantify why PerFlow's design decisions hold
on this substrate:

* hybrid static-dynamic vs trace-everything: the overhead gap;
* sampling frequency vs collection overhead (the 200 Hz choice);
* parallel-view size: linear in rank count (why Table 2's parallel
  columns are |V|_td x 128);
* subgraph matching: anchored label-pruned search vs whole-graph search.
"""

import pytest

from repro.algorithms.subgraph import subgraph_matching
from repro.pag.views import build_top_down_view, parallel_view_stats
from repro.passes.contention import default_contention_pattern
from repro.runtime.executor import run_program
from repro.runtime.sampler import dynamic_overhead_percent
from repro.tools.scalasca import scalasca_trace

from benchmarks.conftest import print_table


def test_ablation_hybrid_vs_tracing(benchmark, all_programs, runs_128):
    """Hybrid collection beats full tracing by orders of magnitude."""

    def measure():
        out = []
        for name in ("cg", "zeusmp"):
            run = runs_128[name]
            hybrid = dynamic_overhead_percent(run)
            tracing = scalasca_trace(all_programs[name], 128, run=run).overhead_pct
            out.append((name, hybrid, tracing))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: hybrid sampling vs full tracing (overhead %)",
        ["program", "hybrid", "tracing"],
        [[n, f"{h:.2f}", f"{t:.2f}"] for n, h, t in rows],
    )
    for _n, hybrid, tracing in rows:
        assert tracing > 10 * hybrid


def test_ablation_sampling_frequency(benchmark, runs_128):
    """Overhead grows linearly with sampling frequency; 200 Hz is cheap."""

    def sweep():
        run = runs_128["bt"]
        return {hz: dynamic_overhead_percent(run, hz) for hz in (50, 200, 1000, 5000)}

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: overhead vs sampling frequency (BT @128)",
        ["Hz", "overhead %"],
        [[hz, f"{pct:.3f}"] for hz, pct in sorted(table.items())],
    )
    assert table[200] < 1.0
    assert table[5000] > table[200]
    # linearity of the sampling term
    delta_hi = table[5000] - table[1000]
    delta_lo = table[1000] - table[200]
    assert delta_hi == pytest.approx(delta_lo * 4000 / 800, rel=0.05)


def test_ablation_parallel_view_linear_in_ranks(benchmark, all_programs):
    """|V| of the parallel view is exactly linear in the rank count."""
    prog = all_programs["cg"]

    def measure():
        out = {}
        for nprocs in (16, 32, 64):
            run = run_program(prog, nprocs=nprocs)
            td, _ = build_top_down_view(prog, run)
            out[nprocs] = parallel_view_stats(td, run)
        return out

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: parallel-view size vs ranks (CG)",
        ["ranks", "|V|", "|E|"],
        [[p, v, e] for p, (v, e) in sorted(sizes.items())],
    )
    assert sizes[32][0] == 2 * sizes[16][0]
    assert sizes[64][0] == 4 * sizes[16][0]


def test_ablation_anchored_subgraph_matching(benchmark, vite_runs):
    """Anchoring the pattern search at suspects cuts the search space."""
    import time

    from repro.dataflow.api import PerFlow, RunContext

    pflow = PerFlow()
    prog = vite_runs["program"]
    run = vite_runs[("orig", 8)]
    pag, sr = build_top_down_view(prog, run)
    pflow._contexts[id(pag)] = RunContext(prog, run, sr, pag)
    pv = pflow.parallel_view(pag, max_ranks=2, expand_threads=True)
    pattern = default_contention_pattern()
    suspects = [v for v in pv.vertices() if v.name == "_M_realloc_insert"][:20]

    def anchored():
        return subgraph_matching(pv, pattern, candidates=suspects, limit=20)

    def whole_graph():
        return subgraph_matching(pv, pattern, limit=20)

    t0 = time.perf_counter()
    a = anchored()
    t_anchored = time.perf_counter() - t0
    t0 = time.perf_counter()
    w = benchmark.pedantic(whole_graph, rounds=1, iterations=1)
    t_whole = time.perf_counter() - t0
    print_table(
        "Ablation: anchored vs whole-graph pattern search",
        ["variant", "embeddings", "seconds"],
        [["anchored", len(a), f"{t_anchored:.4f}"], ["whole graph", len(w), f"{t_whole:.4f}"]],
    )
    # both find contention; anchoring is not slower
    assert len(w) > 0
    assert t_anchored <= t_whole * 1.5 + 0.05

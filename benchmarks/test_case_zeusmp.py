"""Case study A — ZeusMP (paper §5.3, Figs. 8-10, Listing 7/8).

Reproduces:

* the scaling numbers: speedup at 2,048 ranks ≈ 72.57× (16-rank
  baseline), rising to ≈ 77.71× after the fix, a ≈ 6.91% improvement;
* Fig. 9: the differential pass flags the timestep loop,
  ``mpi_waitall_`` and ``mpi_allreduce_`` with scaling loss;
* Fig. 10: backtracking over the parallel view walks from the waiting
  collectives through the ``mpi_waitall_`` chain into the imbalanced
  ``loop_10.1`` region of ``bvald``;
* Listing 7's effort claim: the whole paradigm is a few dozen lines.
"""

import inspect

import pytest

from repro.dataflow.api import PerFlow, RunContext
from repro.pag.edge import EdgeLabel
from repro.pag.views import build_top_down_view
from repro.paradigms import scalability_analysis_paradigm
from repro.paradigms import scalability as scalability_module

from benchmarks.conftest import print_table

PAPER_SPEEDUP = 72.57
PAPER_SPEEDUP_OPT = 77.71
PAPER_IMPROVEMENT_PCT = 6.91


@pytest.fixture(scope="module")
def pflow_with_pags(zeusmp_runs):
    """Wire the session runs into a PerFlow instance (avoids re-running)."""
    pflow = PerFlow()
    prog = zeusmp_runs["program"]
    pags = {}
    for key in (16, 2048):
        run = zeusmp_runs[key]
        pag, sr = build_top_down_view(prog, run)
        pflow._contexts[id(pag)] = RunContext(prog, run, sr, pag)
        pags[key] = pag
    return pflow, pags


def test_scaling_numbers(benchmark, zeusmp_runs):
    def compute():
        t16 = zeusmp_runs[16].elapsed
        t2048 = zeusmp_runs[2048].elapsed
        t16o = zeusmp_runs[(16, "opt")].elapsed
        t2048o = zeusmp_runs[(2048, "opt")].elapsed
        return t16 / t2048, t16o / t2048o, 100.0 * (t2048 / t2048o - 1.0)

    speedup, speedup_opt, improvement = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "ZeusMP scaling (16 -> 2048 ranks)",
        ["metric", "paper", "measured"],
        [
            ["speedup", PAPER_SPEEDUP, f"{speedup:.2f}"],
            ["speedup (optimized)", PAPER_SPEEDUP_OPT, f"{speedup_opt:.2f}"],
            ["improvement @2048 (%)", PAPER_IMPROVEMENT_PCT, f"{improvement:.2f}"],
        ],
    )
    assert speedup == pytest.approx(PAPER_SPEEDUP, rel=0.15)
    assert speedup_opt == pytest.approx(PAPER_SPEEDUP_OPT, rel=0.15)
    assert speedup_opt > speedup
    assert improvement == pytest.approx(PAPER_IMPROVEMENT_PCT, abs=3.0)


def test_fig9_differential_flags_scaling_losers(benchmark, pflow_with_pags):
    pflow, pags = pflow_with_pags

    def run_diff():
        V_diff = pflow.differential_analysis(pags[2048].vs, pags[16].vs)
        V_hot = pflow.hotspot_detection(V_diff, n=12)
        # Fig. 8 wires the differential output through BOTH hotspot and
        # imbalance passes; Fig. 9's detected set is their union.
        V_imb = pflow.imbalance_analysis(V_diff)
        return V_hot, pflow.union(V_hot, V_imb)

    V_hot, V_union = benchmark.pedantic(run_diff, rounds=1, iterations=1)
    hot_names = [v.name for v in V_hot]
    union_names = {v.name for v in V_union}
    print_table("Fig. 9: top scaling-loss vertices", ["name"], [[n] for n in hot_names])
    # the synchronizing collective and the loops lose the most in aggregate
    assert "mpi_allreduce_" in hot_names
    assert any(n.startswith("loop") for n in union_names)
    # the waitall chain is flagged via its extreme per-rank skew
    assert "mpi_waitall_" in union_names


def test_fig10_backtracking_paths(benchmark, pflow_with_pags):
    pflow, pags = pflow_with_pags

    def run_paradigm():
        return scalability_analysis_paradigm(
            pflow, pags[16], pags[2048], max_ranks=64
        )

    res = benchmark.pedantic(run_paradigm, rounds=1, iterations=1)
    path_names = {v.name for v in res.V_bt}
    # the propagation chain: waitalls and the bvald boundary loop region
    assert "mpi_waitall_" in path_names
    assert path_names & {"bc_update", "loop_10.1", "loop_10", "bvald"}
    # red bold arrows of Fig. 10: inter-process edges on the paths
    assert any(e.label is EdgeLabel.INTER_PROCESS for e in res.E_bt)
    # imbalanced instances concentrate on the heavy ranks (0, 16, 32, ...)
    imb_procs = {v["process"] for v in res.V_bt if v.name in ("bc_update", "loop_10.1")}
    if imb_procs:
        assert any(p % 16 == 0 for p in imb_procs)
    print_table(
        "Fig. 10: backtracking summary",
        ["quantity", "value"],
        [
            ["path vertices", len(res.V_bt)],
            ["path edges", len(res.E_bt)],
            ["root candidates", len(res.roots)],
        ],
    )


def test_listing7_effort_claim(benchmark):
    """§5.3: 27 LoC with 7 high-level + 5 low-level APIs vs ScalAna's
    thousands of lines."""

    def count():
        # The paper's 27 lines cover the user-defined backtracking pass
        # plus the paradigm body (Listing 7); count both, minus comments
        # and docstrings.
        total = []
        for fn in (
            scalability_module._user_backtracking,
            scalability_module.scalability_analysis_paradigm,
        ):
            src = inspect.getsource(fn)
            body = src.split('"""')[-1] if '"""' in src else src
            total.extend(
                ln for ln in body.splitlines()
                if ln.strip() and not ln.strip().startswith("#")
            )
        return total

    code_lines = benchmark.pedantic(count, rounds=1, iterations=1)
    from repro.tools import SCALANA_SOURCE_LINES

    print_table(
        "Implementation effort (scalability analysis)",
        ["tool", "lines of code"],
        [
            ["PerFlow paradigm (paper)", 27],
            ["PerFlow paradigm (ours)", len(code_lines)],
            ["ScalAna", SCALANA_SOURCE_LINES],
        ],
    )
    assert len(code_lines) <= 45
    assert SCALANA_SOURCE_LINES / len(code_lines) > 100

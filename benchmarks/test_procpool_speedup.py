"""Process-backend speedup on a CPU-bound pure-python pipeline.

The acceptance benchmark for ``run(jobs=N, backend="process")``: eight
independent passes, each burning ~60 ms of pure-python CPU (integer
arithmetic that never releases the GIL).  Threads cannot overlap this
work — ``backend="thread"`` measures ~1× and is reported alongside as
evidence, not asserted, since the GIL serializes it by construction.
Forked workers overlap it fully, so with ≥4 cores the ideal speedup is
~4× and the test requires **≥ 2×** to absorb CI noise.

The passes take plain-int arguments so the shared-memory publish step
is a no-op: the measurement isolates pool + transfer overhead against
raw compute, the regime the backend exists for.

Each test prints one JSON line (run with ``-s`` to capture) so the
numbers can be tracked across commits by the CI perf-smoke job.
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

from repro.dataflow.graph import PerFlowGraph

CPU_PASSES = 8
SPIN_ITERS = 400_000  # ~60 ms of pure-python integer work per pass
JOBS = 4
MIN_SPEEDUP = 2.0


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


def _spin(seed: int) -> int:
    acc = seed
    for i in range(SPIN_ITERS):
        acc = (acc * 1103515245 + 12345 + i) % 2147483648
    return acc


def _cpu_pass(k: int):
    def fn(v):
        return _spin(v + k)

    return fn


def _build_cpu_graph() -> PerFlowGraph:
    g = PerFlowGraph("speedup-cpu")
    x = g.input("x")
    mids = [
        g.add_pass(_cpu_pass(k), x, name=f"burn_{k}") for k in range(CPU_PASSES)
    ]
    g.add_pass(lambda *vs: min(vs), *mids, name="join")
    return g


def _time_run(g: PerFlowGraph, jobs: int, backend: str) -> float:
    t0 = time.perf_counter()
    g.run(jobs=jobs, backend=backend, x=7)
    return time.perf_counter() - t0


def test_process_backend_speedup_on_cpu_bound_pipeline():
    if (os.cpu_count() or 1) < 2:
        pytest.skip("process-pool speedup needs >= 2 cores")
    g = _build_cpu_graph()
    serial = min(_time_run(g, 1, "thread") for _ in range(2))
    threads = min(_time_run(g, JOBS, "thread") for _ in range(2))
    procs = min(_time_run(g, JOBS, "process") for _ in range(2))
    thread_speedup = serial / threads
    proc_speedup = serial / procs
    _emit(
        "procpool_cpu_speedup",
        passes=CPU_PASSES,
        jobs=JOBS,
        cores=os.cpu_count(),
        serial_s=round(serial, 4),
        thread_s=round(threads, 4),
        process_s=round(procs, 4),
        thread_speedup=round(thread_speedup, 2),
        process_speedup=round(proc_speedup, 2),
    )
    assert proc_speedup >= MIN_SPEEDUP, (
        f"backend='process' speedup {proc_speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x floor (serial {serial * 1e3:.0f} ms, "
        f"process {procs * 1e3:.0f} ms; threads measured "
        f"{thread_speedup:.2f}x — the GIL-bound baseline)"
    )
    # results identical across executors (spot check on top of the
    # cross-backend property suite)
    assert (
        g.run(jobs=1, x=7)
        == g.run(jobs=JOBS, backend="thread", x=7)
        == g.run(jobs=JOBS, backend="process", x=7)
    )


def test_process_backend_overhead_on_chain():
    """On a dependency chain forking buys nothing; pool + pickling
    overhead must stay a modest constant factor over the serial sweep."""
    g = PerFlowGraph("speedup-proc-chain")
    ref = g.input("x")
    for k in range(6):
        ref = g.add_pass(_cpu_pass(k), ref, name=f"link_{k}")
    serial = min(_time_run(g, 1, "thread") for _ in range(2))
    procs = min(_time_run(g, JOBS, "process") for _ in range(2))
    overhead = procs / serial - 1.0
    _emit(
        "procpool_chain_overhead",
        links=6,
        serial_s=round(serial, 4),
        process_s=round(procs, 4),
        overhead_pct=round(overhead * 100, 2),
    )
    # chains are compute-bound; allow 50% for fork + transfer churn
    assert overhead < 0.50

"""Out-of-core format-3 storage: the numbers behind the mmap design.

The binary PAG format exists so analysis over a graph far larger than
working memory stays cheap: the loader reads only the 96-byte header
plus the segment directory, and columns page in lazily as passes touch
them.  Three properties are asserted here, on synthetic PAGs built by
direct column assignment (so a multi-million-vertex graph materializes
in seconds, not minutes):

* **O(header) open** — ``load_pag(mmap=True)`` time is flat across two
  orders of magnitude of vertex count (20k -> 2M vertices).
* **Bounded working set** — a hotspot pass over a ~2M-vertex,
  many-column PAG touches one metric column; RSS growth stays under
  25% of the file's total column bytes.  Measured in a fresh
  subprocess via ``/proc/self/status`` VmHWM (which, unlike
  ``getrusage``'s ``ru_maxrss``, resets on exec and so cannot inherit
  the parent's peak), falling back to ``resource.getrusage`` off
  Linux.  The large file is also *written* by a subprocess so no
  process in the chain ever holds the full graph while measuring.
* **Zero-read cache probes** — ``pag_file_fingerprint`` answers from
  the header in well under the time of any column read, and matches
  the fingerprint of the loaded graph.

Each test prints one JSON line (run with ``-s``) for the CI perf-smoke
job to archive.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from array import array

import numpy as np
import pytest

from repro.pag.columns import FloatColumn
from repro.pag.edge import ELABEL_CODE, EdgeLabel
from repro.pag.formats import pag_file_fingerprint, read_header, save_pag
from repro.pag.graph import PAG
from repro.pag.serialize import load_pag
from repro.pag.vertex import NO_KIND, VLABEL_CODE, VertexLabel

NV_SMALL = 20_000
NV_LARGE = 2_000_000  #: "multi-million" scale; 100x the small graph
N_VCOLS = 20
N_ECOLS = 20

#: Open budget: the large open may cost at most 10x the small one (it
#: should be ~1x; the directory grows only with column *count*), with an
#: absolute floor so a fast machine's sub-ms small open cannot flake it.
OPEN_RATIO_BUDGET = 10.0
OPEN_FLOOR_SECONDS = 0.1
RSS_FRACTION_BUDGET = 0.25
PROBE_BUDGET_SECONDS = 0.05


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


def _fill(pag: PAG, attr: str, typecode: str, values: np.ndarray) -> None:
    buf = array(typecode)
    buf.frombytes(np.ascontiguousarray(values).tobytes())
    setattr(pag, attr, buf)


def _dense_float_column(values: np.ndarray) -> FloatColumn:
    col = FloatColumn()
    col.data.frombytes(values.astype(np.float64).tobytes())
    col.valid = bytearray(b"\x01" * len(values))
    return col


def _synthetic_pag(nv: int, ne: int, vcols: int = N_VCOLS, ecols: int = N_ECOLS) -> PAG:
    """A nv-vertex / ne-edge PAG with many dense float columns.

    Built by direct column assignment — the public ``add_vertex`` path
    would dominate the benchmark's own runtime at this scale.  Values
    are exact binary fractions (k/8) so the writer's 9-decimal rounding
    is lossless and fingerprints are stable.
    """
    pag = PAG(f"synthetic-{nv}", {"nprocs": 64, "view": "top-down"})
    sids = np.array(
        [pag.strings.intern(f"fn_{i:03d}") for i in range(128)], dtype=np.int64
    )
    _fill(pag, "_v_label", "b", np.full(nv, VLABEL_CODE[VertexLabel.FUNCTION], np.int8))
    _fill(pag, "_v_kind", "b", np.full(nv, NO_KIND, np.int8))
    _fill(pag, "_v_name", "q", sids[np.arange(nv) % len(sids)])
    eidx = np.arange(ne, dtype=np.int64)
    _fill(pag, "_e_src", "q", eidx % nv)
    _fill(pag, "_e_dst", "q", (eidx * 7 + 1) % nv)
    _fill(
        pag,
        "_e_label",
        "b",
        np.full(ne, ELABEL_CODE[EdgeLabel.INTRA_PROCEDURAL], np.int8),
    )
    _fill(pag, "_e_kind", "b", np.full(ne, NO_KIND, np.int8))
    pag._vprops.add_rows(nv)
    pag._eprops.add_rows(ne)
    vvals = (np.arange(nv, dtype=np.float64) % 4096) / 8.0
    pag._vprops.columns["time"] = _dense_float_column(vvals)
    for i in range(vcols - 1):
        pag._vprops.columns[f"pmu_{i:02d}"] = _dense_float_column(vvals + i)
    evals = (np.arange(ne, dtype=np.float64) % 4096) / 8.0
    for i in range(ecols):
        pag._eprops.columns[f"edge_metric_{i:02d}"] = _dense_float_column(evals + i)
    return pag


def _column_bytes(path) -> int:
    """Total bytes of property-column segments ("v.*" / "e.*") on disk."""
    segments = read_header(path)["directory"]["segments"]
    return sum(
        nbytes
        for name, (_off, nbytes) in segments.items()
        if name.startswith(("v.", "e."))
    )


_BUILD = """
import sys
sys.path.insert(0, ".")
from benchmarks.test_format3_outofcore import _synthetic_pag
from repro.pag.formats import save_pag
nv = int(sys.argv[2])
save_pag(_synthetic_pag(nv, nv), sys.argv[1], format=3)
"""


@pytest.fixture(scope="module")
def large_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("outofcore") / "large.pag3"
    subprocess.run(
        [sys.executable, "-c", _BUILD, str(path), str(NV_LARGE)], check=True
    )
    return path


def test_open_time_is_order_header(tmp_path, large_file):
    small = tmp_path / "small.pag3"
    save_pag(_synthetic_pag(NV_SMALL, NV_SMALL), small, format=3)

    def best_open(path) -> float:
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            pag = load_pag(path, mmap=True)
            best = min(best, time.perf_counter() - t0)
            del pag
        return best

    t_small, t_large = best_open(small), best_open(large_file)
    budget = max(OPEN_RATIO_BUDGET * t_small, OPEN_FLOOR_SECONDS)
    _emit(
        "format3_open_time",
        vertices_small=NV_SMALL,
        vertices_large=NV_LARGE,
        open_small_s=round(t_small, 6),
        open_large_s=round(t_large, 6),
        budget_s=round(budget, 6),
    )
    assert t_large <= budget


_RSS_PROBE = """
import json, sys
import repro.dataflow  # noqa: F401 -- passes<->dataflow import cycle
from repro.pag.serialize import load_pag
from repro.passes import hotspot_detection

def hwm_kib():
    # VmHWM resets on exec, so it measures THIS process only;
    # ru_maxrss is inherited across exec on Linux and would silently
    # report the parent's peak instead.
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

pag = load_pag(sys.argv[1], mmap=True)
base_kib = hwm_kib()
hot = hotspot_detection(pag.vs, metric="time", n=10)
peak_kib = hwm_kib()
print(json.dumps({
    "top_time": hot[0]["time"],
    "base_bytes": base_kib * 1024,
    "grown_bytes": (peak_kib - base_kib) * 1024,
}))
"""


def test_hotspot_rss_bounded_on_mmap_pag(large_file):
    col_bytes = _column_bytes(large_file)
    out = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(large_file)],
        capture_output=True,
        text=True,
        check=True,
    )
    probe = json.loads(out.stdout)
    budget = RSS_FRACTION_BUDGET * col_bytes
    _emit(
        "format3_hotspot_rss",
        vertices=NV_LARGE,
        file_column_bytes=col_bytes,
        rss_base_bytes=probe["base_bytes"],
        rss_grown_bytes=probe["grown_bytes"],
        budget_bytes=int(budget),
    )
    assert probe["top_time"] == 4095 / 8.0
    # the pass pages in the metric column and allocates sort temporaries,
    # both O(|V|) -- a zero delta would mean the probe measured nothing
    assert probe["grown_bytes"] > NV_LARGE * 8
    assert probe["grown_bytes"] < budget


def test_fingerprint_probe_reads_header_only(large_file):
    t0 = time.perf_counter()
    fp = pag_file_fingerprint(large_file)
    probe_s = time.perf_counter() - t0
    assert fp == load_pag(large_file, mmap=True).fingerprint()
    _emit(
        "format3_fingerprint_probe",
        vertices=NV_LARGE,
        probe_s=round(probe_s, 6),
        budget_s=PROBE_BUDGET_SECONDS,
    )
    assert probe_s < PROBE_BUDGET_SECONDS

"""Result-cache speedup and overhead on the mpi-profiler pipeline.

The acceptance benchmark for ``PerFlowGraph.run(cache=...)``: the
mpi-profiler stages (comm_filter → hotspot → profile_rows) run against
the real cg PAG with each pass carrying a simulated ~40 ms analysis
cost (the cache pays off proportionally to pass cost; the bare passes
on the 321-vertex cg graph finish in microseconds, where a lookup is
worth no more than the compute it replaces).  A warm rerun must skip
every pass node — verified via the ``dataflow.cache.hits`` metric and
golden equality against the cold result — and come in **≥ 5× faster**.

The flip side of the contract: with the cache *disabled* the dataflow
layer must not tax the pipeline, so the median disabled run stays
within **3%** of directly composing the same pass functions.

The pure (unslowed) paradigm is also exercised end-to-end: a warm
rerun of ``mpi_profiler_paradigm`` on cg answers from cache alone,
row-for-row equal to the cold run.

Each test prints one JSON line (run with ``-s`` to capture) so the
numbers can be tracked across commits by the CI perf-smoke job.
"""

from __future__ import annotations

import json
import statistics
import sys
import time

from repro.apps import npb
from repro.cache import PassCache
from repro.dataflow.api import PerFlow
from repro.dataflow.graph import PerFlowGraph
from repro.obs import metrics as obs_metrics
from repro.pag.sets import VertexSet
from repro.paradigms.mpi_profiler import _profile_rows, mpi_profiler_paradigm
from repro.passes.filters import comm_filter
from repro.passes.hotspot import hotspot_detection

PASS_LATENCY = 0.04  # seconds of simulated analysis cost per pass
MIN_SPEEDUP = 5.0
MAX_DISABLED_OVERHEAD = 0.03  # fraction over direct pass composition
TOP = 10


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


# Module-level passes (globals are referenced by name, so the cache key
# is stable across graph rebuilds); the sleep models a pass whose
# analysis cost dwarfs the cache machinery.
def slow_comm_filter(V: VertexSet) -> VertexSet:
    time.sleep(PASS_LATENCY)
    return comm_filter(V)


def slow_hotspot(V: VertexSet) -> VertexSet:
    time.sleep(PASS_LATENCY)
    return hotspot_detection(V, metric="time", n=TOP)


def _cg_pag():
    pflow = PerFlow()
    return pflow.run(bin=npb.build_cg("W", iterations=15), nprocs=32)


def _build_graph(total: float) -> PerFlowGraph:
    g = PerFlowGraph("mpi-profiler-bench")
    V = g.input("V", VertexSet)
    a = g.add_pass(slow_comm_filter, V, name="comm_filter")
    b = g.add_pass(slow_hotspot, a, name="hotspot")

    def slow_profile_rows(s):
        time.sleep(PASS_LATENCY)
        return _profile_rows(s, total)

    g.add_pass(slow_profile_rows, b, name="profile_rows")
    return g


def _time_run(g: PerFlowGraph, pag, cache) -> float:
    t0 = time.perf_counter()
    out = g.run(cache=cache, V=pag.vs)
    return time.perf_counter() - t0, out


def test_warm_rerun_speedup():
    pag = _cg_pag()
    total = float(pag.vertex(0)["time"] or 0.0)
    cache = PassCache()
    g = _build_graph(total)
    hits0 = obs_metrics.counter("dataflow.cache.hits").value
    cold_s, golden = _time_run(g, pag, cache)
    assert obs_metrics.counter("dataflow.cache.hits").value == hits0
    warm_s, warm = _time_run(_build_graph(total), pag, cache)
    hits = obs_metrics.counter("dataflow.cache.hits").value - hits0
    speedup = cold_s / warm_s
    _emit(
        "cache_warm_speedup",
        pass_latency_s=PASS_LATENCY,
        cold_s=round(cold_s, 4),
        warm_s=round(warm_s, 4),
        speedup=round(speedup, 1),
        hits=hits,
    )
    assert hits == 3, "warm rerun must skip every pass node"
    assert warm["profile_rows"] == golden["profile_rows"]  # golden equality
    assert list(warm["hotspot"].ids()) == list(golden["hotspot"].ids())
    assert speedup >= MIN_SPEEDUP, (
        f"warm rerun speedup {speedup:.1f}x below the {MIN_SPEEDUP}x floor "
        f"(cold {cold_s * 1e3:.0f} ms, warm {warm_s * 1e3:.0f} ms)"
    )


def test_disabled_cache_overhead():
    pag = _cg_pag()
    total = float(pag.vertex(0)["time"] or 0.0)
    g = _build_graph(total)

    def direct() -> float:
        t0 = time.perf_counter()
        _profile_rows(slow_hotspot(slow_comm_filter(pag.vs)), total)
        time.sleep(PASS_LATENCY)  # profile_rows' share of the modelled cost
        return time.perf_counter() - t0

    def through_graph() -> float:
        t0 = time.perf_counter()
        g.run(cache=False, V=pag.vs)
        return time.perf_counter() - t0

    baseline = statistics.median(direct() for _ in range(5))
    disabled = statistics.median(through_graph() for _ in range(5))
    overhead = disabled / baseline - 1.0
    _emit(
        "cache_disabled_overhead",
        baseline_s=round(baseline, 4),
        disabled_s=round(disabled, 4),
        overhead_pct=round(overhead * 100, 2),
    )
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"cache-disabled pipeline {overhead * 100:.1f}% over direct "
        f"composition (floor {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )


def test_mpi_profiler_paradigm_warm_skip_end_to_end():
    pflow = PerFlow()
    pag = _cg_pag()
    cache = PassCache()
    # deltas, not absolutes: the metrics registry is process-global and
    # benchmarks (unlike the unit suite) do not reset it between tests
    hits0 = obs_metrics.counter("dataflow.cache.hits").value
    misses0 = obs_metrics.counter("dataflow.cache.misses").value
    golden = mpi_profiler_paradigm(pflow, pag, top=TOP, cache=cache)
    warm = mpi_profiler_paradigm(pflow, pag, top=TOP, cache=cache)
    assert obs_metrics.counter("dataflow.cache.hits").value - hits0 == 3
    assert obs_metrics.counter("dataflow.cache.misses").value - misses0 == 3
    assert warm == golden

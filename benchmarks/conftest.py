"""Shared, session-scoped state for the reproduction benchmarks.

Expensive simulations (2,048-rank case-study runs, the 11-program
Table 1/2 sweep) are built once per session and shared across benchmark
modules.  A tiny report helper prints paper-vs-measured rows so the
benchmark output doubles as the reproduction log (run with ``-s`` to
see the tables; EXPERIMENTS.md records a captured copy).
"""

from __future__ import annotations

import pytest

from repro.apps import lammps, registry, vite, zeusmp
from repro.runtime.executor import run_program


def print_table(title, headers, rows):
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


@pytest.fixture(scope="session")
def all_programs():
    """The 11 evaluated programs at the paper's problem class."""
    return {name: build() for name, build in registry("C").items()}


@pytest.fixture(scope="session")
def runs_128(all_programs):
    """Each program executed at 128 ranks (Table 1/2's configuration)."""
    out = {}
    for name, prog in all_programs.items():
        machine = lammps.MACHINE if name == "lammps" else None
        nthreads = 4 if name == "vite" else 1
        out[name] = run_program(prog, nprocs=128, nthreads=nthreads, machine=machine)
    return out


@pytest.fixture(scope="session")
def zeusmp_runs(all_programs):
    """Case study A: 16 and 2,048 ranks, original and optimized."""
    prog = all_programs["zeusmp"]
    return {
        "program": prog,
        16: run_program(prog, nprocs=16),
        2048: run_program(prog, nprocs=2048),
        (16, "opt"): run_program(prog, nprocs=16, params={"optimized": True}),
        (2048, "opt"): run_program(prog, nprocs=2048, params={"optimized": True}),
    }


@pytest.fixture(scope="session")
def lammps_runs(all_programs):
    """Case study B: 2,048 ranks, original and balanced."""
    prog = all_programs["lammps"]
    return {
        "program": prog,
        "orig": run_program(prog, nprocs=2048, machine=lammps.MACHINE),
        "balanced": run_program(
            prog, nprocs=2048, params={"balanced": True}, machine=lammps.MACHINE
        ),
    }


@pytest.fixture(scope="session")
def vite_runs(all_programs):
    """Case study C: 8 processes, 2..8 threads, original and optimized."""
    prog = all_programs["vite"]
    out = {"program": prog}
    for t in (2, 3, 4, 5, 6, 7, 8):
        out[("orig", t)] = run_program(prog, nprocs=8, nthreads=t)
        out[("opt", t)] = run_program(prog, nprocs=8, nthreads=t, params={"optimized": True})
    return out

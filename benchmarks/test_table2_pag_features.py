"""Table 2 — Code size, binary size, and PAG features (both views).

Top-down |V| must match the paper *exactly* (the app models are
calibrated to it, with |E| = |V| - 1); the parallel view at 128
processes must satisfy |V| = |V|_top-down × 128 (the paper's exact
relation) and land |E| in the same ballpark.  Parallel views of the
big programs are sized with the O(events) stats path, which is
validated against full materialization on the small kernels.
"""

import pytest

from repro.ir.binary import binary_info
from repro.pag.views import (
    build_parallel_view,
    build_top_down_view,
    parallel_view_stats,
)

from benchmarks.conftest import print_table

#: Paper Table 2: (code KLoC, binary bytes, |V| td, |E| td, |V| par, |E| par)
PAPER = {
    "bt": (11.3, 490_000, 3283, 3282, 420_224, 462_404),
    "cg": (2.0, 97_000, 321, 320, 41_088, 55_176),
    "ep": (0.6, 60_000, 111, 110, 14_208, 34_360),
    "ft": (2.5, 222_000, 2904, 2903, 371_712, 409_128),
    "mg": (2.8, 270_000, 4701, 4700, 601_728, 712_432),
    "sp": (6.3, 357_000, 2252, 2251, 288_256, 322_364),
    "lu": (7.7, 325_000, 1566, 1565, 200_448, 284_780),
    "is": (1.3, 37_000, 325, 324, 41_600, 69_816),
    "zeusmp": (44.1, 2_200_000, 11_981, 11_980, 1_533_568, 2_805_760),
    "lammps": (704.8, 14_670_000, 85_230, 85_229, 10_909_440, 16_423_808),
    "vite": (15.9, 2_800_000, 7118, 7117, 970_624, 984_866),
}


def _build_table2(all_programs, runs_128):
    rows = {}
    for name, prog in all_programs.items():
        run = runs_128[name]
        td, _sr = build_top_down_view(prog, run)
        pv_v, pv_e = parallel_view_stats(td, run)
        info = binary_info(prog)
        rows[name] = (info.code_kloc, info.binary_bytes, td.num_vertices, td.num_edges, pv_v, pv_e)
    return rows


def test_table2_rows(benchmark, all_programs, runs_128):
    table2 = benchmark.pedantic(
        _build_table2, args=(all_programs, runs_128), rounds=1, iterations=1
    )
    out = []
    for name, paper in PAPER.items():
        m = table2[name]
        out.append([name, m[0], m[1], f"{paper[2]}/{m[2]}", f"{paper[3]}/{m[3]}",
                    f"{paper[4]}/{m[4]}", f"{paper[5]}/{m[5]}"])
    print_table(
        "Table 2: PAG features (paper/measured)",
        ["program", "KLoC", "binary", "|V| td", "|E| td", "|V| par", "|E| par"],
        out,
    )
    for name, paper in PAPER.items():
        kloc, nbytes, vtd, etd, vp, ep = table2[name]
        assert kloc == paper[0]
        assert nbytes == paper[1]
        assert vtd == paper[2], name  # exact calibration
        assert etd == paper[3], name  # tree invariant
        assert vp == paper[2] * 128, name  # the paper's exact relation
        # parallel-view edges: flow edges are exact; comm edges depend on
        # the modelled communication volume — same order of magnitude
        assert 0.4 < ep / paper[5] < 2.5, (name, ep, paper[5])


def test_stats_path_matches_materialization(benchmark, all_programs, runs_128):
    """The O(events) size computation equals full materialization."""

    def check():
        for name in ("cg", "ep", "is"):
            prog, run = all_programs[name], runs_128[name]
            td, sr = build_top_down_view(prog, run)
            pv = build_parallel_view(td, sr, run)
            assert parallel_view_stats(td, run) == (pv.num_vertices, pv.num_edges)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_bench_parallel_view_materialization(benchmark, all_programs, runs_128):
    """Timed: materializing CG's 128-rank parallel view (41K vertices)."""
    td, sr = build_top_down_view(all_programs["cg"], runs_128["cg"])
    pv = benchmark.pedantic(
        build_parallel_view, args=(td, sr, runs_128["cg"]), rounds=1, iterations=1
    )
    assert pv.num_vertices == 321 * 128

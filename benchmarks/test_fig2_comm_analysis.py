"""Fig. 2 / Listing 1 — the communication-analysis PerFlowGraph.

filter("MPI_*") → hotspot → imbalance → breakdown → report, run against
an imbalanced MPI execution; the report carries the key attributes the
paper lists (name, comm-info, debug-info, time) and the breakdown pass
attributes the imbalance to its cause.
"""

import pytest

from repro.dataflow.api import PerFlow, RunContext
from repro.pag.views import build_top_down_view
from repro.paradigms import communication_analysis_paradigm

from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def pflow_and_pag(all_programs, runs_128):
    pflow = PerFlow()
    prog = all_programs["zeusmp"]
    run = runs_128["zeusmp"]
    pag, sr = build_top_down_view(prog, run)
    pflow._contexts[id(pag)] = RunContext(prog, run, sr, pag)
    return pflow, pag


def test_fig2_pipeline(benchmark, pflow_and_pag):
    pflow, pag = pflow_and_pag
    V_imb, V_bd, report = benchmark.pedantic(
        communication_analysis_paradigm, args=(pflow, pag), rounds=1, iterations=1
    )
    assert len(V_imb) >= 1
    names = {v.name for v in V_imb}
    assert names & {"mpi_waitall_", "mpi_allreduce_"}
    causes = {v["breakdown"]["cause"] for v in V_bd}
    # the waits trace back to pre-communication load imbalance
    assert causes & {"load imbalance before communication", "synchronization wait"}
    text = report.to_text()
    for attr in ("name", "comm-info", "debug-info", "time"):
        assert attr in text
    print_table(
        "Fig. 2 output (imbalanced communication calls)",
        ["name", "cause"],
        [[v.name, v["breakdown"]["cause"]] for v in V_bd],
    )


def test_fig2_report_renders_dot(benchmark, pflow_and_pag):
    """The report module's 'visualized graphs' side: DOT output."""
    from repro.passes.report import to_dot

    pflow, pag = pflow_and_pag
    V_imb, _bd, _rep = communication_analysis_paradigm(pflow, pag)
    hot = pflow.hotspot_detection(pag.vs, n=40)
    dot = benchmark.pedantic(
        to_dot, args=(hot,), kwargs={"highlight": V_imb.to_list()}, rounds=1, iterations=1
    )
    assert dot.startswith("digraph")
    assert "penwidth=3" in dot  # imbalance boxes

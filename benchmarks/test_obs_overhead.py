"""Disabled-mode observability overhead must stay under 2%.

The :func:`repro.obs.trace.span` fast path is one module-global read,
one identity check, and a shared no-op object — no allocation, no
clock read.  This benchmark holds that promise against the LAMMPS
parallel-view paradigm (the heaviest instrumented flow in the repo):

1. measure the per-call cost of the disabled ``span()`` path directly,
2. count how many ``span()`` calls one paradigm run actually makes
   (by running it once under a real recorder),
3. assert ``calls x per_call_cost < 2% x paradigm_wall_time``.

Measuring "the same code with the instrumentation deleted" is not
possible without a second copy of the tree, so the guard bounds the
*added* cost from above: every disabled call site pays one fast-path
invocation, and the product of count and unit cost is the total bill.

Each test prints one JSON line (run with ``-s``) for the CI perf-smoke
job, matching ``test_pag_core_perf.py``.
"""

from __future__ import annotations

import json
import sys
import time

import pytest

import repro.dataflow  # noqa: F401 - resolves the passes/dataflow import cycle
from repro.apps import lammps, registry
from repro.obs import trace as obs_trace
from repro.paradigms import mpi_profiler_paradigm
from repro.dataflow.api import PerFlow

#: Maximum share of paradigm wall time the disabled span path may cost.
OVERHEAD_BUDGET_PCT = 2.0

SCALED_RANKS = 16


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


def _best_of(fn, repeat: int = 3) -> float:
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.fixture(scope="module")
def lammps_paradigm():
    """A closed paradigm runnable repeatedly: LAMMPS mpiP profile."""
    prog = registry("C")["lammps"]()
    pflow = PerFlow(machine=lammps.MACHINE)
    pag = pflow.run(bin=prog, nprocs=SCALED_RANKS)

    def run_once():
        return mpi_profiler_paradigm(pflow, pag, top=20)

    return run_once


def test_disabled_span_call_is_nanoseconds():
    """Unit cost of the disabled fast path, measured in isolation."""
    assert not obs_trace.enabled()
    N = 200_000

    def burn():
        for _ in range(N):
            with obs_trace.span("bench", category="x", n=1):
                pass

    per_call = _best_of(burn) / N
    _emit("disabled_span_unit_cost", ns_per_call=round(per_call * 1e9, 1))
    # Generous ceiling: the path is ~100-200ns on laptop-class cores;
    # 2µs absorbs the slowest CI runner while still catching an
    # accidental allocation or clock read on the disabled path.
    assert per_call < 2e-6


def test_disabled_overhead_under_two_percent(lammps_paradigm):
    run_once = lammps_paradigm
    assert not obs_trace.enabled()

    # How many spans does one paradigm run actually open?
    rec = obs_trace.enable()
    try:
        rows = run_once()
    finally:
        obs_trace.disable()
    assert rows, "paradigm produced no profile rows"
    n_spans = len(rec.spans)
    assert n_spans >= 6  # pipeline + check + 4 nodes

    # Wall time of the paradigm with tracing disabled (the normal mode).
    paradigm_s = _best_of(run_once)

    # Unit cost of one disabled span() call at these exact call shapes.
    N = 100_000

    def burn():
        for _ in range(N):
            with obs_trace.span("node:bench", category="dataflow.pass", node_id=1):
                pass

    per_call = _best_of(burn) / N

    added = n_spans * per_call
    overhead_pct = 100.0 * added / paradigm_s
    _emit(
        "disabled_tracing_overhead",
        spans_per_run=n_spans,
        ns_per_disabled_call=round(per_call * 1e9, 1),
        paradigm_seconds=round(paradigm_s, 4),
        overhead_pct=round(overhead_pct, 4),
        budget_pct=OVERHEAD_BUDGET_PCT,
    )
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"disabled tracing costs {overhead_pct:.3f}% of the LAMMPS "
        f"mpi-profiler paradigm ({n_spans} spans x {per_call * 1e9:.0f} ns "
        f"over {paradigm_s:.3f} s)"
    )


def test_flight_enabled_overhead_under_two_percent(lammps_paradigm):
    """The always-on flight recorder must fit the same <2% budget.

    With only the flight ring installed (no full recorder — the CLI's
    steady state), every ``span()`` call allocates one ``_FlightSpan``
    and writes two ring slots under a lock.  Same methodology as the
    disabled-mode guard: count the spans one paradigm run opens, price
    one flight-mode call, and bound the added cost from above.
    """
    from repro.obs import flight as obs_flight

    run_once = lammps_paradigm
    assert not obs_trace.enabled()

    rec = obs_trace.enable()
    try:
        run_once()
    finally:
        obs_trace.disable()
    n_spans = len(rec.spans)

    paradigm_s = _best_of(run_once)

    N = 100_000
    fl = obs_flight.enable(capacity=obs_flight.DEFAULT_CAPACITY)
    try:
        assert not obs_trace.enabled()  # flight-only mode

        def burn():
            for _ in range(N):
                with obs_trace.span("node:bench", category="dataflow.pass", node_id=1):
                    pass

        per_call = _best_of(burn) / N
    finally:
        obs_flight.disable()
    assert fl.total >= 2 * N  # the ring really was being written

    added = n_spans * per_call
    overhead_pct = 100.0 * added / paradigm_s
    _emit(
        "flight_recorder_overhead",
        spans_per_run=n_spans,
        ns_per_flight_call=round(per_call * 1e9, 1),
        paradigm_seconds=round(paradigm_s, 4),
        overhead_pct=round(overhead_pct, 4),
        budget_pct=OVERHEAD_BUDGET_PCT,
    )
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"flight recording costs {overhead_pct:.3f}% of the LAMMPS "
        f"mpi-profiler paradigm ({n_spans} spans x {per_call * 1e9:.0f} ns "
        f"over {paradigm_s:.3f} s)"
    )

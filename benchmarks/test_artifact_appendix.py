"""Artifact appendix A.3 — the two validation workloads.

* A.3.1: the MPI-profiler paradigm on NPB-CG (CLASS B, 8 processes);
* A.3.2: the critical-path detection task (a user-level composition of
  low-level APIs) on a multi-threaded Pthreads micro-benchmark.
"""

import pytest

from repro.apps import microbench, npb
from repro.dataflow.api import PerFlow
from repro.paradigms import critical_path_paradigm, mpi_profiler_paradigm

from benchmarks.conftest import print_table


def test_a31_mpi_profiler_on_cg(benchmark):
    """`model_validation.py`: MPI profiler paradigm, CG CLASS B, np=8."""
    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_cg("B"), cmd="mpirun -np 8 ./cg.B.8")

    rows = benchmark.pedantic(
        mpi_profiler_paradigm, args=(pflow, pag), rounds=1, iterations=1
    )
    assert rows
    print_table(
        "A.3.1: mpiP-paradigm profile of NPB-CG (CLASS B, 8 ranks)",
        ["call", "site", "time(s)", "app %", "count"],
        [[r.name, r.site, f"{r.time:.4f}", f"{r.app_pct:.2f}", r.count] for r in rows[:8]],
    )
    # CG's p2p-implemented reductions dominate its MPI profile
    assert rows[0].name in ("MPI_Sendrecv", "MPI_Isend", "MPI_Waitall", "MPI_Allreduce")
    assert all(r.app_pct <= 100 for r in rows)


def test_a32_critical_path_on_pthreads_micro(benchmark):
    """`pass_validation.py`: critical-path detection on the micro-benchmark."""
    pflow = PerFlow()
    pag = pflow.run(
        bin=microbench.build(), nprocs=1, nthreads=4, params={"nthreads": 4}
    )
    res = benchmark.pedantic(
        critical_path_paradigm,
        args=(pflow, pag),
        kwargs={"expand_threads": True},
        rounds=1,
        iterations=1,
    )
    assert res.weight > 0
    hot = [(n, t, w) for (n, _p, t, w) in res.summary if w > 0.005]
    print_table(
        "A.3.2: critical path through the pthreads micro-benchmark",
        ["vertex", "thread", "weight(s)"],
        [[n, t, f"{w:.4f}"] for n, t, w in hot],
    )
    # the path must pass through the heaviest thread's busy work
    assert any(n == "busy_work" and t == 4 for n, t, _w in hot)

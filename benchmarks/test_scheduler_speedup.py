"""Wavefront scheduler speedup on a wide simulated-latency pipeline.

The acceptance benchmark for ``PerFlowGraph.run(jobs=N)``: a pipeline
with 12 independent passes, each modelling a pass that costs ~30 ms
(sleeping releases the GIL exactly like the columnar PAG's numpy bulk
reads do), followed by a join.  Serial execution costs the sum of the
pass latencies; ``jobs=4`` overlaps four at a time, so the ideal
speedup is ~4× and the test requires **≥ 2×** to absorb CI noise.

A second measurement confirms the other side of the contract: on a
pure *chain* (no parallelism to exploit) the scheduler's overhead stays
negligible, so opting in globally via ``PERFLOW_JOBS`` is safe.

Each test prints one JSON line (run with ``-s`` to capture) so the
numbers can be tracked across commits by the CI perf-smoke job.
"""

from __future__ import annotations

import json
import sys
import time

from repro.dataflow.graph import PerFlowGraph

WIDE_PASSES = 12
PASS_LATENCY = 0.03  # seconds; simulated per-pass cost
JOBS = 4
MIN_SPEEDUP = 2.0


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


def _simulated_pass(k: int):
    def fn(v):
        time.sleep(PASS_LATENCY)
        return frozenset(i + k for i in v)

    return fn


def _build_wide_graph() -> PerFlowGraph:
    g = PerFlowGraph("speedup-wide")
    x = g.input("x")
    mids = [
        g.add_pass(_simulated_pass(k), x, name=f"stage_{k}")
        for k in range(WIDE_PASSES)
    ]
    g.add_pass(lambda *vs: frozenset().union(*vs), *mids, name="join")
    return g


def _time_run(g: PerFlowGraph, jobs: int) -> float:
    t0 = time.perf_counter()
    g.run(jobs=jobs, x=frozenset({1, 2, 3}))
    return time.perf_counter() - t0


def test_wide_pipeline_speedup_at_jobs_4():
    g = _build_wide_graph()
    serial = min(_time_run(g, 1) for _ in range(2))
    parallel = min(_time_run(g, JOBS) for _ in range(2))
    speedup = serial / parallel
    _emit(
        "scheduler_wide_speedup",
        passes=WIDE_PASSES,
        pass_latency_s=PASS_LATENCY,
        jobs=JOBS,
        serial_s=round(serial, 4),
        parallel_s=round(parallel, 4),
        speedup=round(speedup, 2),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"jobs={JOBS} speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"(serial {serial * 1e3:.0f} ms, parallel {parallel * 1e3:.0f} ms)"
    )
    # results identical either way (spot check on top of the property suite)
    assert g.run(jobs=1, x=frozenset({5})) == g.run(jobs=JOBS, x=frozenset({5}))


def test_chain_overhead_stays_negligible():
    """On a dependency chain the scheduler cannot parallelize; it must
    not cost more than a modest constant factor over the serial sweep."""
    g = PerFlowGraph("speedup-chain")
    ref = g.input("x")
    for k in range(10):
        ref = g.add_pass(_simulated_pass(k), ref, name=f"link_{k}")
    serial = min(_time_run(g, 1) for _ in range(2))
    parallel = min(_time_run(g, JOBS) for _ in range(2))
    overhead = parallel / serial - 1.0
    _emit(
        "scheduler_chain_overhead",
        links=10,
        serial_s=round(serial, 4),
        parallel_s=round(parallel, 4),
        overhead_pct=round(overhead * 100, 2),
    )
    # chains are latency-bound on the sleeps; allow 25% for pool churn
    assert overhead < 0.25

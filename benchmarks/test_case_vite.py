"""Case study C — Vite (paper §5.5, Figs. 13-16).

Reproduces:

* Fig. 13: execution time vs thread count (8 processes, 2..8 threads)
  for the original and optimized versions — the original *degrades*
  with threads (speedup ≈ 0.56× at 8, 2-thread baseline), the optimized
  version scales (≈ 1.46×) and is ≈ 25× faster at 8 threads;
* Fig. 15a/b: hotspot detection shows many hot vertices, differential
  analysis between the 2- and 8-thread runs isolates the allocator
  vertices (``_M_realloc_insert``);
* Fig. 16 and §5.5's diagnosis: causal analysis + contention detection
  find resource contention embeddings around
  allocate/reallocate/deallocate — the thread-unsafe allocator lock.
"""

import pytest

from repro.dataflow.api import PerFlow, RunContext
from repro.pag.edge import EdgeLabel
from repro.pag.views import build_top_down_view
from repro.paradigms import branching_diagnosis_paradigm

from benchmarks.conftest import print_table

PAPER_SPEEDUP_8V2 = 0.56
PAPER_OPT_SPEEDUP_8V2 = 1.46
PAPER_IMPROVEMENT_8 = 25.29

#: allocator symbols of the §5.5 diagnosis
ALLOC_SYMBOLS = {"allocate", "_M_realloc_insert", "_M_emplace", "deallocate", "reallocate"}


def test_fig13_thread_scaling_series(benchmark, vite_runs):
    def series():
        orig = {t: vite_runs[("orig", t)].elapsed for t in range(2, 9)}
        opt = {t: vite_runs[("opt", t)].elapsed for t in range(2, 9)}
        return orig, opt

    orig, opt = benchmark.pedantic(series, rounds=1, iterations=1)
    rows = [[t, f"{orig[t]:.4f}", f"{opt[t]:.4f}"] for t in range(2, 9)]
    print_table("Fig. 13: Vite time vs threads (8 procs)", ["threads", "original", "optimized"], rows)

    speedup = orig[2] / orig[8]
    opt_speedup = opt[2] / opt[8]
    improvement = orig[8] / opt[8]
    print_table(
        "Vite scaling summary",
        ["metric", "paper", "measured"],
        [
            ["speedup 8v2 (orig)", PAPER_SPEEDUP_8V2, f"{speedup:.2f}"],
            ["speedup 8v2 (opt)", PAPER_OPT_SPEEDUP_8V2, f"{opt_speedup:.2f}"],
            ["improvement @8 (x)", PAPER_IMPROVEMENT_8, f"{improvement:.1f}"],
        ],
    )
    # original degrades monotonically-ish: 8 threads slower than 2
    assert orig[8] > orig[2]
    assert speedup == pytest.approx(PAPER_SPEEDUP_8V2, abs=0.12)
    # optimized scales positively
    assert opt[8] < opt[2]
    assert opt_speedup == pytest.approx(PAPER_OPT_SPEEDUP_8V2, abs=0.25)
    # an order-of-magnitude win at 8 threads (paper: 25.29x)
    assert improvement > 10.0


@pytest.fixture(scope="module")
def diagnosis(vite_runs):
    pflow = PerFlow()
    prog = vite_runs["program"]
    pags = {}
    for t in (2, 8):
        run = vite_runs[("orig", t)]
        pag, sr = build_top_down_view(prog, run)
        pflow._contexts[id(pag)] = RunContext(prog, run, sr, pag)
        pags[t] = pag
    return pflow, pags


def test_fig15a_hotspots(benchmark, diagnosis):
    pflow, pags = diagnosis
    V_hot = benchmark.pedantic(
        pflow.hotspot_detection, args=(pags[8].vs,), kwargs={"n": 30}, rounds=1, iterations=1
    )
    names = {v.name for v in V_hot}
    print_table("Fig. 15a: hotspots (top 30)", ["names"], [[", ".join(sorted(names))[:100]]])
    assert len(V_hot) == 30  # "dozens of hotspots"
    assert any(n.startswith("_Hashtable") for n in names)


def test_fig14_16_branching_diagnosis(benchmark, diagnosis):
    pflow, pags = diagnosis
    res = benchmark.pedantic(
        branching_diagnosis_paradigm,
        args=(pflow, pags[2], pags[8]),
        kwargs={"max_ranks": 4},
        rounds=1,
        iterations=1,
    )
    # Fig. 15b: differential isolates the allocator traffic
    diff_names = {v.name for v in res.V_diff}
    assert diff_names & ALLOC_SYMBOLS
    # §5.5: causal analysis points at the allocator vertices themselves
    cause_names = {v.name for v in res.V_causes}
    assert cause_names & ALLOC_SYMBOLS
    # Fig. 16: contention embeddings over inter-thread wait edges
    assert len(res.V_contention) >= 5
    assert all(e.label is EdgeLabel.INTER_THREAD for e in res.E_contention)
    cont_names = {v.name for v in res.V_contention}
    assert cont_names & ALLOC_SYMBOLS
    print_table(
        "Fig. 14/16: branching diagnosis",
        ["stage", "output"],
        [
            ["differential", ", ".join(sorted(diff_names & ALLOC_SYMBOLS))],
            ["causes", ", ".join(sorted(cause_names & ALLOC_SYMBOLS))],
            ["contention vertices", len(res.V_contention)],
            ["contention edges", len(res.E_contention)],
        ],
    )

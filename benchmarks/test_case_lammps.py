"""Case study B — LAMMPS (paper §5.4, Figs. 11-12, Listing 9).

Reproduces, at 2,048 ranks:

* communication ~28.9% of total; MPI_Send ≈ 7.70% and MPI_Wait ≈ 7.42%
  detected as communication hotspots;
* the imbalance pass flags MPI_Send/MPI_Wait instances near the heavy
  ranks (0, 1, 2), and causal analysis traces them to ``loop_1.1`` in
  ``PairLJCut::compute`` — the root cause;
* the balance fix: throughput improves ≈ 13.77% (paper: 118.89 →
  134.54 timesteps/s; our simulated timebase differs, so the *ratio* is
  the reproduced quantity).
"""

import collections

import pytest

from repro.apps import lammps
from repro.dataflow.api import PerFlow, RunContext
from repro.pag.views import build_top_down_view
from repro.paradigms import loop_causal_paradigm
from repro.passes.filters import comm_filter

from benchmarks.conftest import print_table

PAPER_SEND_PCT = 7.70
PAPER_WAIT_PCT = 7.42
PAPER_COMM_PCT = 28.91
PAPER_IMPROVEMENT_PCT = 13.77


@pytest.fixture(scope="module")
def pflow_and_pag(lammps_runs):
    pflow = PerFlow(machine=lammps.MACHINE)
    prog = lammps_runs["program"]
    run = lammps_runs["orig"]
    pag, sr = build_top_down_view(prog, run)
    pflow._contexts[id(pag)] = RunContext(prog, run, sr, pag)
    return pflow, pag


def test_fig11_comm_shares(benchmark, pflow_and_pag):
    _pflow, pag = pflow_and_pag

    def shares():
        total = float(pag.vertex(0)["time"])
        agg = collections.Counter()
        for v in comm_filter(pag.vs):
            agg[v.name] += float(v["time"] or 0.0)
        return {name: 100.0 * t / total for name, t in agg.items()}

    pct = benchmark.pedantic(shares, rounds=1, iterations=1)
    rows = [
        ["MPI_Send", PAPER_SEND_PCT, f"{pct.get('MPI_Send', 0):.2f}"],
        ["MPI_Wait", PAPER_WAIT_PCT, f"{pct.get('MPI_Wait', 0):.2f}"],
        ["total comm", PAPER_COMM_PCT, f"{sum(pct.values()):.2f}"],
    ]
    print_table("LAMMPS comm shares @2048 ranks (% of total)", ["call", "paper", "measured"], rows)
    assert pct["MPI_Send"] == pytest.approx(PAPER_SEND_PCT, rel=0.25)
    assert pct["MPI_Wait"] == pytest.approx(PAPER_WAIT_PCT, rel=0.25)
    assert sum(pct.values()) == pytest.approx(PAPER_COMM_PCT, rel=0.25)


def test_fig11_fig12_causal_chain(benchmark, pflow_and_pag):
    """Fig. 11's PerFlowGraph executed; Fig. 12's diagnosis asserted."""
    pflow, pag = pflow_and_pag

    res = benchmark.pedantic(
        loop_causal_paradigm,
        args=(pflow, pag),
        kwargs={"max_ranks": 16},  # heavy ranks 0-2 and their neighborhood
        rounds=1,
        iterations=1,
    )
    hot_comm = {v.name for v in pflow.comm_filter(res.V_hot)}
    assert {"MPI_Send", "MPI_Wait"} <= hot_comm
    # imbalance flags instances of the blocking swap calls
    imb_names = {v.name for v in res.V_imb}
    assert imb_names & {"MPI_Send", "MPI_Wait", "MPI_Sendrecv"}
    # the causal fixpoint surfaces the pair loop region or its instances
    cause_names = {v.name for v in res.V_causes}
    assert cause_names & {"loop_1.1", "loop_1", "lj_kernel", "PairLJCut::compute"}
    print_table(
        "LAMMPS causal analysis",
        ["stage", "output"],
        [
            ["comm hotspots", ", ".join(sorted(hot_comm))],
            ["imbalanced", ", ".join(sorted(imb_names))],
            ["root causes", ", ".join(sorted(cause_names))[:80]],
        ],
    )


def test_balance_fix_improvement(benchmark, lammps_runs):
    def compute():
        steps = 4
        orig = lammps.timesteps_per_second(lammps_runs["orig"].elapsed, steps)
        fixed = lammps.timesteps_per_second(lammps_runs["balanced"].elapsed, steps)
        return orig, fixed

    orig, fixed = benchmark.pedantic(compute, rounds=1, iterations=1)
    improvement = 100.0 * (fixed / orig - 1.0)
    print_table(
        "LAMMPS balance optimization @2048 ranks",
        ["metric", "paper", "measured"],
        [
            ["timesteps/s before", 118.89, f"{orig:.2f}"],
            ["timesteps/s after", 134.54, f"{fixed:.2f}"],
            ["improvement (%)", PAPER_IMPROVEMENT_PCT, f"{improvement:.2f}"],
        ],
    )
    assert fixed > orig
    assert improvement == pytest.approx(PAPER_IMPROVEMENT_PCT, abs=4.0)

"""Shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs setuptools' legacy editable
path on this offline box; everything else is declared in pyproject.toml.
"""
from setuptools import setup

setup()

#!/usr/bin/env python3
"""Communication analysis of LAMMPS — case study B (paper §5.4, Fig. 11-12).

Profiles the LAMMPS model, notices the communication share, then runs
the Fig. 11 PerFlowGraph (hotspot → comm filter → imbalance → repeated
causal analysis) to trace the blocking MPI_Send/MPI_Wait hotspots back
to the imbalanced pair-interaction loop — and verifies the `balance`
fix recovers throughput.

    python examples/communication_analysis.py [ranks]
"""

import sys

from repro import PerFlow
from repro.apps import lammps
from repro.paradigms import loop_causal_paradigm
from repro.runtime import run_program

ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64
steps = 3

pflow = PerFlow(machine=lammps.MACHINE)
prog = lammps.build(steps=steps)
pag = pflow.run(bin=prog, nprocs=ranks)

total = pag.vertex(0)["time"]
comm = pflow.comm_filter(pag.vs)
print(f"total communication: {100 * comm.sum('time') / total:.1f}% of aggregate time")

res = loop_causal_paradigm(pflow, pag, max_ranks=min(ranks, 16))

print("\ncommunication hotspots:")
for v in pflow.comm_filter(res.V_hot):
    print(f"  {v.name:14} {v['debug-info']:22} {100 * v['time'] / total:5.2f}%")

print("\nimbalanced instances (boxes of Fig. 12):")
for v in list(res.V_imb)[:8]:
    print(f"  {v.name:14} process {v['process']}  imbalance {v['imbalance']:.2f}x")

print("\nroot causes (fixpoint of the causal branch):")
names = sorted({f"{v.name} ({v['debug-info']})" for v in res.V_causes})
for n in names[:6]:
    print(f"  {n}")

print("\napplying the balance fix ...")
orig = run_program(prog, nprocs=ranks, machine=lammps.MACHINE)
fixed = run_program(prog, nprocs=ranks, params={"balanced": True}, machine=lammps.MACHINE)
o, f = steps / orig.elapsed, steps / fixed.elapsed
print(f"throughput: {o:.2f} -> {f:.2f} timesteps/s (+{100 * (f / o - 1):.1f}%)")

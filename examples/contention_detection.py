#!/usr/bin/env python3
"""Resource-contention diagnosis of Vite — case study C (paper §5.5).

Runs the Vite model at 2 and 8 threads per process, shows the
thread-scaling collapse, then executes the Fig. 14 branching
PerFlowGraph (hotspot / differential / causal / contention branches) to
pin the cause: thread-unsafe memory allocation serializing on the
process allocator lock.

    python examples/contention_detection.py
"""

from repro import PerFlow
from repro.apps import vite
from repro.paradigms import branching_diagnosis_paradigm
from repro.runtime import run_program

prog = vite.build(phases=1)

print("thread scaling of the original Vite (4 processes):")
for t in (2, 4, 6, 8):
    elapsed = run_program(prog, nprocs=4, nthreads=t).elapsed
    print(f"  {t} threads: {elapsed:.4f}s")

pflow = PerFlow()
pag2 = pflow.run(bin=prog, nprocs=4, nthreads=2)
pag8 = pflow.run(bin=prog, nprocs=4, nthreads=8)

res = branching_diagnosis_paradigm(pflow, pag2, pag8, max_ranks=4)

print("\nbranch 2 — what grew from 2 to 8 threads (differential):")
for v in res.V_diff:
    print(f"  {v.name:24} +{v['time']:.4f}s")

print("\nbranch 3 — causal analysis (common ancestors of the suspects):")
for v in list(res.V_causes)[:6]:
    print(f"  {v.name:24} p{v['process']}.t{v['thread']}")

print(
    f"\nbranch 4 — contention embeddings: {len(res.V_contention)} vertices, "
    f"{len(res.E_contention)} inter-thread wait edges"
)
hubs = sorted({v["contention_hub"] for v in res.V_contention if v["contention_hub"]})
for hub in hubs[:5]:
    print(f"  serialization hub: {hub}")

print(
    "\ndiagnosis: allocate/_M_realloc_insert/_M_emplace/deallocate serialize "
    "on the process-wide allocator lock; allocation volume grows with the "
    "thread count, so more threads make the run slower."
)

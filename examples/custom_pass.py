#!/usr/bin/env python3
"""Writing a user-defined pass with the low-level API (paper §4.3).

Implements a "wait-chain length" pass — for every communication vertex,
how many hops of inter-process waiting feed into it — using only
low-level graph operations (``v.es``, ``select``, ``e.src``), then
composes it with built-in passes in a declarative PerFlowGraph and a
critical-path check on the pthreads micro-benchmark.

    python examples/custom_pass.py
"""

from repro import PerFlow
from repro.apps import microbench, zeusmp
from repro.pag.sets import VertexSet
from repro.paradigms import critical_path_paradigm

pflow = PerFlow()


# -- a user-defined pass over the parallel view ---------------------------
def wait_chain_length(V: VertexSet) -> VertexSet:
    """Annotate each vertex with `chain` = hops of incoming wait edges."""
    out = []
    for v in V:
        hops, seen = 0, {v.id}
        cur = v
        while True:
            in_comm = cur.es.select(pflow.IN_EDGE, of=cur, type=pflow.COMM)
            waiting = in_comm.filter(lambda e: (e["wait_time"] or 0) > 0)
            if not waiting:
                break
            cur = waiting[0].src
            if cur.id in seen:
                break
            seen.add(cur.id)
            hops += 1
        v["chain"] = hops
        out.append(v)
    return VertexSet(out)


pag = pflow.run(bin=zeusmp.build(steps=2), nprocs=16)

# compose it with built-ins in a declarative PerFlowGraph
g = pflow.perflowgraph("wait-chains")
V_in = g.input("V")
comm = g.add_pass(pflow.comm_filter, V_in, name="comm_filter")
hot = g.add_pass(lambda V: pflow.hotspot_detection(V, n=6), comm, name="hotspot")
inst = g.add_pass(
    lambda V: pflow.instances(V, pag, max_ranks=16, all_ranks=True), hot, name="instances"
)
chains = g.add_pass(wait_chain_length, inst, name="wait_chain")
outputs = g.run(V=pag.vs)

print(g.to_dot())
print("\nlongest wait chains feeding communication calls:")
ranked = sorted(outputs["wait_chain"], key=lambda v: -(v["chain"] or 0))[:8]
for v in ranked:
    print(f"  {v.name:20} p{v['process']}: {v['chain']} hops")

# -- appendix A.3.2 style: critical path on a pthreads micro-benchmark ----
pag_mb = pflow.run(bin=microbench.build(), nprocs=1, nthreads=4, params={"nthreads": 4})
res = critical_path_paradigm(pflow, pag_mb, expand_threads=True)
print(f"\ncritical path of the pthreads micro-benchmark ({res.weight:.4f}s):")
for name, proc, thread, weight in res.summary:
    print(f"  {name:16} p{proc}.t{thread}  {weight:.4f}s")

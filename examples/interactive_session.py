#!/usr/bin/env python3
"""Interactive analysis mode (paper §4.5).

When you do not yet know which analysis applies, start with a general
pass and let each output suggest the next one.  This walkthrough drives
:class:`repro.dataflow.interactive.InteractiveSession` over the ZeusMP
model until a root cause emerges, printing each suggestion's reasoning.

    python examples/interactive_session.py
"""

from repro import PerFlow
from repro.apps import zeusmp
from repro.dataflow.interactive import InteractiveSession

pflow = PerFlow()
pag = pflow.run(bin=zeusmp.build(steps=3), nprocs=16)
sess = InteractiveSession(pflow, pag)

for step in range(4):
    suggestion = sess.suggest()
    print(f"step {step + 1}: {suggestion}")
    output = suggestion.run()
    if suggestion.pass_name == "backtracking_analysis":
        V_bt, E_bt = output
        roots = [v for v in V_bt if v["backtrack_root"]]
        print(f"  -> {len(V_bt)} path vertices, {len(roots)} root candidates")
        for v in roots[:3]:
            print(f"     root: {v.name} on process {v['process']} ({v['debug-info']})")
        break
    try:
        print(f"  -> {len(output)} elements")
    except TypeError:
        print(f"  -> {type(output).__name__}")

print()
print(sess.transcript())

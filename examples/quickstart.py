#!/usr/bin/env python3
"""Quickstart — the paper's Listing 1, end to end.

Runs an NPB-CG model on 8 simulated ranks, filters communication
vertices, finds hotspots, checks balance, breaks the imbalance down,
and prints the report.

    python examples/quickstart.py
    python examples/quickstart.py --trace quickstart-trace.json \
        --metrics quickstart-metrics.json   # record repro.obs output
"""

import argparse
import sys

from repro import PerFlow
from repro.apps import npb
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

cli = argparse.ArgumentParser(description=__doc__)
cli.add_argument("--trace", help="write a Chrome trace-event JSON here")
cli.add_argument("--metrics", help="write the metrics registry JSON here")
opts = cli.parse_args()
recorder = obs_trace.enable() if opts.trace else None

pflow = PerFlow()

# Run the binary and return a Program Abstraction Graph.  The "binary"
# is a program model; `cmd` is parsed for the rank count just like the
# paper's `pflow.run(bin="./a.out", cmd="mpirun -np 4 ./a.out")`.
pag = pflow.run(bin=npb.build_cg("W"), cmd="mpirun -np 8 ./cg.W.8")

# Build a PerFlowGraph (eager style, exactly Listing 1).
V_comm = pflow.filter(pag.V, name="MPI_*")
V_hot = pflow.hotspot_detection(V_comm)
V_imb = pflow.imbalance_analysis(V_hot)
V_bd = pflow.breakdown_analysis(V_imb)
attrs = ["name", "comm-info", "debug-info", "time"]
pflow.report(V_imb, V_bd, attrs=attrs, file=sys.stdout)

print(f"\nPAG: {pag}")
print(f"communication vertices: {len(V_comm)}, hotspots: {len(V_hot)}, imbalanced: {len(V_imb)}")

if recorder is not None:
    obs_trace.disable()
    recorder.save(opts.trace)
    print(f"wrote trace: {opts.trace}", file=sys.stderr)
if opts.metrics:
    obs_metrics.registry.save(opts.metrics)
    print(f"wrote metrics: {opts.metrics}", file=sys.stderr)

#!/usr/bin/env python3
"""Static lint walkthrough: find a bug before any run, fix it, re-lint.

The ZeusMP model carries the paper's §5.3 load imbalance: every 16th
rank does ~40% extra boundary work (`bvald.F:360`).  The dynamic side
needs a full simulated run plus imbalance/breakdown passes to see it;
`repro.lint` finds it by *probing* the model's cost callables across
sample ranks — no execution at all.  The model's `optimized` parameter
applies the paper's fix, and the same probe shows the smell is gone.

    python examples/static_lint.py
"""

from repro.apps import zeusmp
from repro.lint import LintConfig, Severity, lint_program

# 1. Lint the shipped (buggy) model.  LintConfig's defaults probe 16
#    sample ranks x 4 threads, enough to expose every modelled stride.
prog = zeusmp.build()
report = lint_program(prog)
print("== zeusmp, as shipped ==")
print(report.to_text())

imbalance = report.by_code("PF006")
assert imbalance, "expected the injected §5.3 imbalance to be flagged"
assert any(d.file == "bvald.F" for d in imbalance)

# 2. The diagnostics carry file:line debug info, so each one points at
#    the statement to fix — here, the rank-dependent boundary update.
worst = imbalance[0]
print(f"\nroot cause: {worst.location} in {worst.function}(): {worst.message}")

# 3. Apply the fix.  The model exposes it as the `optimized` parameter
#    (the paper's balanced boundary decomposition); `LintConfig.params`
#    feeds it to every probe, exactly like run parameters feed a run.
fixed = lint_program(prog, LintConfig(params={"optimized": True}))
print("\n== zeusmp, optimized variant ==")
print(fixed.to_text())
assert fixed.by_code("PF006") == [], "the fix removes the imbalance"

# 4. The report maps onto CI exit codes via severity thresholds:
#    `python -m repro lint zeusmp --fail-on=warning` exits 1 on the
#    buggy model and 0 with `--param optimized`.
before = report.count_at_least(Severity.WARNING)
after = fixed.count_at_least(Severity.WARNING)
print(f"\nwarnings before fix: {before}, after: {after}")

#!/usr/bin/env python3
"""Scalability analysis of ZeusMP — case study A (paper §5.3, Fig. 8-10).

Runs the ZeusMP model at two scales, feeds both PAGs through the
scalability-analysis paradigm (differential → hotspot/imbalance →
union → backtracking), and prints the detected propagation chain and
root-cause candidates.

    python examples/scalability_analysis.py [small_ranks] [large_ranks]
"""

import sys

from repro import PerFlow
from repro.apps import zeusmp
from repro.paradigms import scalability_analysis_paradigm

small_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 8
large_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 64

pflow = PerFlow()
prog = zeusmp.build(steps=3)

print(f"running zeusmp at {small_ranks} and {large_ranks} ranks ...")
pag_small = pflow.run(bin=prog, nprocs=small_ranks)
pag_large = pflow.run(bin=prog, nprocs=large_ranks)

speedup = (
    pflow.context(pag_small).run.elapsed / pflow.context(pag_large).run.elapsed
)
ideal = large_ranks / small_ranks
print(f"speedup {speedup:.2f}x (ideal {ideal:.0f}x) — investigating the loss\n")

res = scalability_analysis_paradigm(
    pflow, pag_small, pag_large, max_ranks=min(large_ranks, 64)
)

print("top scaling-loss vertices (differential + hotspot):")
for v in res.V_hot:
    print(f"  {v.name:20} {v['debug-info']:16} loss={v['time']:.4f}s")

print("\nbacktracking paths (who delayed whom):")
for e in res.E_bt[:12]:
    print(
        f"  {e.src.name}@p{e.src['process']} -> {e.dst.name}@p{e.dst['process']}"
        f"  [{e.label.value}]"
    )

print("\nroot-cause candidates (deepest vertices on the paths):")
seen = set()
for v in res.roots:
    key = (v.name, v["process"])
    if key not in seen:
        seen.add(key)
        print(f"  {v.name} on process {v['process']} ({v['debug-info']})")

# Fig. 10-style visualization: slice the parallel view around the first
# imbalanced instance and render the backtracking fragment as Graphviz.
from repro.pag.views import slice_parallel_view  # noqa: E402
from repro.passes.report import to_dot  # noqa: E402

pv = pflow.parallel_view(pag_large, max_ranks=min(large_ranks, 64))
if len(res.V_bt):
    around = tuple(v.id for v in list(res.V_bt)[:4])
    partial = slice_parallel_view(pv, names=(), around=around, hops=2)
    dot = to_dot(
        (pv.vertex(v["orig_id"]) for v in partial.vertices()),
        res.E_bt,
        highlight=res.V_bt.to_list()[:8],
        name="fig10_partial",
    )
    with open("fig10_partial.dot", "w", encoding="utf-8") as fh:
        fh.write(dot)
    print("\nwrote fig10_partial.dot (render with: dot -Tsvg fig10_partial.dot)")

"""Unit tests for VertexSet/EdgeSet (the §4.3.1 set operations)."""

import pytest

from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import IN_EDGE, OUT_EDGE, EdgeSet, VertexSet
from repro.pag.vertex import CallKind, VertexLabel


@pytest.fixture
def pag():
    g = PAG("sets")
    g.add_vertex(VertexLabel.FUNCTION, "main", properties={"time": 10.0})
    g.add_vertex(VertexLabel.CALL, "MPI_Send", CallKind.COMM, {"time": 3.0})
    g.add_vertex(VertexLabel.CALL, "MPI_Recv", CallKind.COMM, {"time": 5.0})
    g.add_vertex(VertexLabel.CALL, "istream::read", CallKind.EXTERNAL, {"time": 1.0})
    g.add_vertex(VertexLabel.LOOP, "loop_1", properties={"time": 7.0})
    g.add_edge(0, 4, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(4, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(4, 2, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 2, EdgeLabel.INTER_PROCESS, properties={"wait_time": 0.5})
    return g


def test_select_name_glob(pag):
    comm = pag.vs.select(name="MPI_*")
    assert {v.name for v in comm} == {"MPI_Send", "MPI_Recv"}


def test_select_label_and_kind(pag):
    assert len(pag.vs.select(label=VertexLabel.LOOP)) == 1
    assert len(pag.vs.select(call_kind=CallKind.COMM)) == 2
    assert len(pag.vs.select(call_kind=CallKind.COMM, name="MPI_Send")) == 1


def test_select_property(pag):
    assert [v.name for v in pag.vs.select(time=7.0)] == ["loop_1"]


def test_sort_by_and_top(pag):
    ordered = pag.vs.sort_by("time")
    assert [v.name for v in ordered][:2] == ["main", "loop_1"]
    assert len(ordered.top(2)) == 2
    assert ordered.top(0).to_list() == []
    with pytest.raises(ValueError):
        ordered.top(-1)


def test_sort_by_missing_metric_treated_as_zero(pag):
    ordered = pag.vs.sort_by("nonexistent")
    assert len(ordered) == len(pag.vs)


def test_set_algebra(pag):
    comm = pag.vs.select(name="MPI_*")
    loops = pag.vs.select(label=VertexLabel.LOOP)
    u = comm.union(loops)
    assert len(u) == 3
    assert comm.intersection(u) == comm
    assert u.difference(comm) == loops
    assert comm.complement(pag.vs) == pag.vs.difference(comm)
    # operator forms
    assert (comm | loops) == u
    assert (u & comm) == comm
    assert (u - loops) == comm


def test_dedup_preserves_first_occurrence(pag):
    v = pag.vertex(1)
    s = VertexSet([v, pag.vertex(2), v])
    assert len(s) == 2
    assert s[0].id == 1


def test_classify(pag):
    groups = pag.vs.classify(lambda v: v.label)
    assert len(groups[VertexLabel.CALL]) == 3
    assert len(groups[VertexLabel.LOOP]) == 1


def test_map_property_and_sum(pag):
    comm = pag.vs.select(name="MPI_*")
    assert sorted(comm.map_property("time")) == [3.0, 5.0]
    assert comm.sum("time") == 8.0


def test_contains_and_bool(pag):
    s = pag.vs.select(name="MPI_*")
    assert pag.vertex(1) in s
    assert pag.vertex(0) not in s
    assert bool(s)
    assert not bool(VertexSet([]))


def test_slicing_returns_set(pag):
    s = pag.vs[1:3]
    assert isinstance(s, VertexSet)
    assert len(s) == 2


def test_unhashable(pag):
    with pytest.raises(TypeError):
        hash(pag.vs)


def test_vertexset_pag_property(pag):
    assert pag.vs.pag is pag
    assert VertexSet([]).pag is None


def test_edgeset_select_direction(pag):
    v = pag.vertex(2)
    in_es = v.es.select(IN_EDGE, of=v)
    assert len(in_es) == 2
    out_es = v.es.select(OUT_EDGE, of=v)
    assert len(out_es) == 0


def test_edgeset_select_type_and_property(pag):
    es = pag.es_all
    comm = es.select(type=EdgeLabel.INTER_PROCESS)
    assert len(comm) == 1
    assert comm[0]["wait_time"] == 0.5
    assert len(es.select(wait_time=0.5)) == 1


def test_edgeset_sources_destinations(pag):
    comm = pag.es_all.select(type=EdgeLabel.INTER_PROCESS)
    assert [v.name for v in comm.sources()] == ["MPI_Send"]
    assert [v.name for v in comm.destinations()] == ["MPI_Recv"]

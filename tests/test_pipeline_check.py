"""Tests for the PerFlowGraph pipeline type-checker (PF8## diagnostics).

A mis-wired pipeline — e.g. an EdgeSet output fed to a VertexSet
input — must be rejected by :meth:`PerFlowGraph.check` *before any pass
executes*, while undeclared (untyped) passes keep running unchecked.
"""

import pytest

from repro.dataflow import PerFlowGraph, PipelineError, SetKind, signature
from repro.dataflow.signatures import PassSignature, make_signature, signature_of
from repro.lint import Severity
from repro.pag.sets import EdgeSet, VertexSet


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def keep_vertices(V):
    return V


@signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
def split(V):
    return V, EdgeSet([])


@signature(inputs=(VertexSet, EdgeSet), outputs=(VertexSet,))
def merge(V, E):
    return V


def test_well_typed_pipeline_checks_clean_and_runs():
    g = PerFlowGraph("ok")
    V = g.input("V", kind=VertexSet)
    s = g.add_pass(split, V, name="split")
    out = g.add_pass(merge, s.out(0), s.out(1), name="merge")
    assert g.check() == []
    result = g.run(V=VertexSet([]))
    assert isinstance(result["merge"], VertexSet)


def test_pf801_edgeset_into_vertexset_input():
    g = PerFlowGraph("wrong-kind")
    V = g.input("V", kind=VertexSet)
    s = g.add_pass(split, V, name="split")
    g.add_pass(keep_vertices, s.out(1), name="consume")  # out(1) is the EdgeSet
    diags = g.check()
    assert [d.code for d in diags] == ["PF801"]
    assert diags[0].severity is Severity.ERROR
    assert "expects a VertexSet but is fed a EdgeSet" in diags[0].message


def test_pf801_rejected_before_any_pass_executes():
    executed = []

    @signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
    def tracked_split(V):
        executed.append("split")
        return V, EdgeSet([])

    g = PerFlowGraph("no-exec")
    V = g.input("V", kind=VertexSet)
    s = g.add_pass(tracked_split, V, name="split")
    g.add_pass(keep_vertices, s.out(1), name="consume")
    with pytest.raises(PipelineError) as exc:
        g.run(V=VertexSet([]))
    assert executed == []  # nothing ran
    assert isinstance(exc.value, TypeError)  # drop-in for ad-hoc TypeErrors
    assert [d.code for d in exc.value.diagnostics] == ["PF801"]


def test_pf801_binding_conflicts_with_declared_input_kind():
    g = PerFlowGraph("bad-binding")
    g.input("V", kind=VertexSet)
    diags = g.check(V=EdgeSet([]))
    assert [d.code for d in diags] == ["PF801"]
    assert "declared VertexSet but bound to a EdgeSet" in diags[0].message


def test_pf802_arity_mismatch():
    g = PerFlowGraph("arity")
    V = g.input("V", kind=VertexSet)
    g.add_pass(merge, V, name="merge")  # merge declares two inputs
    diags = g.check()
    assert [d.code for d in diags] == ["PF802"]
    assert "2 input(s)" in diags[0].message


def test_pf803_invalid_output_index():
    g = PerFlowGraph("bad-out")
    V = g.input("V", kind=VertexSet)
    s = g.add_pass(split, V, name="split")
    g.add_pass(keep_vertices, s.out(5), name="consume")
    diags = g.check()
    assert [d.code for d in diags] == ["PF803"]
    assert "declares 2 output(s)" in diags[0].message


def test_pf804_unknown_binding_name():
    g = PerFlowGraph("unknown")
    g.input("V", kind=VertexSet)
    diags = g.check(W=VertexSet([]))
    assert [d.code for d in diags] == ["PF804"]
    assert "'W'" in diags[0].message


def test_untyped_passes_stay_unchecked():
    g = PerFlowGraph("scalars")
    x = g.input("x")
    doubled = g.add_pass(lambda v: v * 2, x, name="double")
    g.add_pass(lambda v: v + 1, doubled, name="inc")
    assert g.check() == []
    assert g.run(x=4)["inc"] == 9


def test_inline_signature_types_a_lambda():
    g = PerFlowGraph("inline-sig")
    V = g.input("V", kind=VertexSet)
    s = g.add_pass(split, V, name="split")
    g.add_pass(
        lambda E: E,
        s.out(1),
        name="edges-only",
        signature=((EdgeSet,), (EdgeSet,)),
    )
    assert g.check() == []
    g.add_pass(
        lambda E: E,
        s.out(1),
        name="edges-as-vertices",
        signature=((VertexSet,), (VertexSet,)),
    )
    assert [d.code for d in g.check()] == ["PF801"]


def test_fixpoint_propagates_input_kind():
    g = PerFlowGraph("fix")
    V = g.input("V", kind=VertexSet)
    fp = g.add_fixpoint(lambda s: s, V, name="stable")
    g.add_pass(keep_vertices, fp, name="after")
    assert g.check() == []


def test_builtin_passes_carry_signatures():
    from repro.passes.causal import causal_analysis
    from repro.passes.hotspot import hotspot_detection

    hot = signature_of(hotspot_detection)
    assert hot == make_signature(inputs=(VertexSet,), outputs=(VertexSet,))
    causal = signature_of(causal_analysis)
    assert causal.outputs == (SetKind.VERTEX_SET, SetKind.EDGE_SET)


def test_builtin_pipeline_miswiring_is_caught():
    from repro.passes.causal import causal_analysis
    from repro.passes.hotspot import hotspot_detection

    g = PerFlowGraph("builtin")
    V = g.input("V", kind=VertexSet)
    hot = g.add_pass(hotspot_detection, V, name="hotspot")
    ca = g.add_pass(causal_analysis, hot, name="causal")
    g.add_pass(hotspot_detection, ca.out(1), name="hot-on-edges")
    diags = g.check()
    assert [d.code for d in diags] == ["PF801"]


def test_setkind_coercions():
    assert SetKind.of(VertexSet) is SetKind.VERTEX_SET
    assert SetKind.of(EdgeSet([])) is SetKind.EDGE_SET
    assert SetKind.of("edges") is SetKind.EDGE_SET
    assert SetKind.of("*") is SetKind.ANY
    assert SetKind.of(42) is SetKind.ANY  # arbitrary values stay unchecked
    with pytest.raises(ValueError):
        SetKind.of("frobnicate")
    assert SetKind.ANY.compatible(SetKind.EDGE_SET)
    assert not SetKind.VERTEX_SET.compatible(SetKind.EDGE_SET)
    assert str(PassSignature((SetKind.VERTEX_SET,), (SetKind.EDGE_SET,))) == (
        "(VertexSet) -> (EdgeSet)"
    )

"""Property suite: parallel wavefront execution == serial execution.

Hypothesis generates random PerFlowGraphs of *pure set-passes* over
``frozenset[int]`` values — unary/binary set algebra, multi-output
splits consumed through ``NodeRef.out(i)``, and fixpoint closure nodes
— and asserts that ``run(jobs=n)`` for n ∈ {2, 4} returns the exact
``{name: output}`` mapping of the serial ``run(jobs=1)``, node for
node.  A second property injects a raising pass at a random position
and asserts the parallel run surfaces the *same* first error (type and
message) as the serial sweep, with no hung or leaked worker threads.

A third and fourth property draw the *backend* too — ``thread`` or
``process`` — pinning the multiprocessing pool to the same node-for-node
results and first-error contract as serial execution (fewer examples:
each process-backend run forks a fresh pool).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import PerFlowGraph

# ----------------------------------------------------------------------
# pure set-pass vocabulary (all deterministic, all thread-safe)
# ----------------------------------------------------------------------


def _union(*sets):
    return frozenset().union(*sets)


def _intersection(a, b):
    return a & b


def _symdiff(a, b):
    return a ^ b


def _shift(a):
    return frozenset(x + 1 for x in a)


def _halve(a):
    return frozenset(x // 2 for x in a)


def _split_parity(a):
    """Multi-output pass: (evens, odds), consumed via ``.out(i)``."""
    return (
        frozenset(x for x in a if x % 2 == 0),
        frozenset(x for x in a if x % 2 == 1),
    )


def _closure_step(a):
    """Fixpoint body: halving closure — converges (values shrink to 0)."""
    return a | frozenset(x // 2 for x in a)


_UNARY = [_shift, _halve]
_BINARY = [_intersection, _symdiff, lambda a, b: _union(a, b)]


# ----------------------------------------------------------------------
# random-DAG specs: a list of node descriptors, each wiring to earlier
# outputs only (PerFlowGraph construction order guarantees acyclicity)
# ----------------------------------------------------------------------

_NODE_KINDS = ("unary", "binary", "union3", "split", "fixpoint")


@st.composite
def graph_specs(draw):
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    inputs = [
        draw(st.frozensets(st.integers(min_value=0, max_value=31), max_size=8))
        for _ in range(n_inputs)
    ]
    n_nodes = draw(st.integers(min_value=1, max_value=12))
    nodes = []
    for i in range(n_nodes):
        avail = n_inputs + i  # producers available to node i
        kind = draw(st.sampled_from(_NODE_KINDS))
        if kind == "unary":
            wiring = [draw(st.integers(0, avail - 1))]
            op = draw(st.integers(0, len(_UNARY) - 1))
        elif kind == "binary":
            wiring = [draw(st.integers(0, avail - 1)) for _ in range(2)]
            op = draw(st.integers(0, len(_BINARY) - 1))
        elif kind == "union3":
            wiring = [draw(st.integers(0, avail - 1)) for _ in range(3)]
            op = 0
        else:  # split / fixpoint
            wiring = [draw(st.integers(0, avail - 1))]
            op = 0
        nodes.append((kind, wiring, op))
    return inputs, nodes


def _producer_is_split(nodes, n_inputs, idx):
    return idx >= n_inputs and nodes[idx - n_inputs][0] == "split"


def build_graph(spec, poison_at=None):
    """Materialize a spec as a PerFlowGraph; optionally poison one node.

    Split producers are consumed through ``.out(parity)`` fan-out;
    everything else flows whole.  ``poison_at`` (a node index) wraps
    that node's function to raise ``ValueError('poisoned node <i>')``.
    """
    inputs, nodes = spec
    g = PerFlowGraph("prop")
    refs = [g.input(f"in{i}") for i in range(len(inputs))]
    bindings = {f"in{i}": v for i, v in enumerate(inputs)}

    for i, (kind, wiring, op) in enumerate(nodes):
        def pick(slot, j):
            ref = refs[j]
            if _producer_is_split(nodes, len(inputs), j):
                return ref.out(slot % 2)
            return ref

        if kind == "unary":
            fn, wired = _UNARY[op], (pick(0, wiring[0]),)
        elif kind == "binary":
            fn, wired = _BINARY[op], tuple(pick(s, j) for s, j in enumerate(wiring))
        elif kind == "union3":
            fn, wired = _union, tuple(pick(s, j) for s, j in enumerate(wiring))
        elif kind == "split":
            fn, wired = _split_parity, (pick(0, wiring[0]),)
        else:  # fixpoint
            fn, wired = _closure_step, (pick(0, wiring[0]),)

        if poison_at == i:
            msg = f"poisoned node {i}"

            def poisoned(*args, _msg=msg):
                raise ValueError(_msg)

            fn = poisoned

        if kind == "fixpoint":
            refs.append(g.add_fixpoint(fn, wired[0], max_iters=16, name=f"n{i}"))
        else:
            refs.append(g.add_pass(fn, *wired, name=f"n{i}"))
    return g, bindings


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(spec=graph_specs())
def test_parallel_results_equal_serial(spec):
    g, bindings = build_graph(spec)
    serial = g.run(jobs=1, **bindings)
    for jobs in (2, 4):
        parallel = g.run(jobs=jobs, **bindings)
        assert list(parallel) == list(serial)  # same names, same order
        for name in serial:
            assert parallel[name] == serial[name], (
                f"node {name!r} diverged at jobs={jobs}"
            )


@_SETTINGS
@given(spec=graph_specs(), data=st.data())
def test_injected_error_matches_serial(spec, data):
    _, nodes = spec
    poison_at = data.draw(st.integers(0, len(nodes) - 1), label="poison_at")
    g, bindings = build_graph(spec, poison_at=poison_at)

    with pytest.raises(ValueError) as serial_exc:
        g.run(jobs=1, **bindings)
    before = threading.active_count()
    for jobs in (2, 4):
        with pytest.raises(ValueError) as parallel_exc:
            g.run(jobs=jobs, **bindings)
        assert str(parallel_exc.value) == str(serial_exc.value)
        assert type(parallel_exc.value) is type(serial_exc.value)
    assert threading.active_count() <= before  # pool joined, no leaks


# Process-backend examples fork a pool per run; keep the draw count low
# enough that the property stays in CI budget on small machines.
_BACKEND_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_BACKENDS = st.sampled_from(["thread", "process"])


@_BACKEND_SETTINGS
@given(spec=graph_specs(), backend=_BACKENDS)
def test_backend_results_equal_serial(spec, backend):
    g, bindings = build_graph(spec)
    serial = g.run(jobs=1, **bindings)
    parallel = g.run(jobs=2, backend=backend, **bindings)
    assert list(parallel) == list(serial)  # same names, same order
    for name in serial:
        assert parallel[name] == serial[name], (
            f"node {name!r} diverged on backend={backend}"
        )


@_BACKEND_SETTINGS
@given(spec=graph_specs(), data=st.data())
def test_backend_injected_error_matches_serial(spec, data):
    _, nodes = spec
    backend = data.draw(_BACKENDS, label="backend")
    poison_at = data.draw(st.integers(0, len(nodes) - 1), label="poison_at")
    g, bindings = build_graph(spec, poison_at=poison_at)

    with pytest.raises(ValueError) as serial_exc:
        g.run(jobs=1, **bindings)
    with pytest.raises(ValueError) as parallel_exc:
        g.run(jobs=2, backend=backend, **bindings)
    assert str(parallel_exc.value) == str(serial_exc.value)
    assert type(parallel_exc.value) is type(serial_exc.value)


def test_process_backend_fixpoint_and_fanout():
    """Deterministic cover: ``.out(i)`` fan-out feeding a fixpoint node
    and a diamond merge, byte-identical across serial and process runs."""
    def build():
        g = PerFlowGraph("proc-fan")
        x = g.input("x")
        split = g.add_pass(_split_parity, x, name="split")
        evens = g.add_pass(_shift, split.out(0), name="evens")
        odds = g.add_pass(_shift, split.out(1), name="odds")
        close = g.add_fixpoint(_closure_step, evens, max_iters=32, name="close")
        g.add_pass(_union, close, odds, name="merge")
        return g

    bindings = {"x": frozenset(range(17))}
    serial = build().run(jobs=1, **bindings)
    proc = build().run(jobs=3, backend="process", **bindings)
    assert proc == serial


def test_serial_and_parallel_share_fixpoint_iterates():
    """Fixpoint nodes converge to the identical fixed point either way."""
    g = PerFlowGraph("fixcheck")
    x = g.input("x")
    fx = g.add_fixpoint(_closure_step, x, max_iters=32, name="close")
    g.add_pass(_shift, fx, name="after")
    bindings = {"x": frozenset({17, 64, 999})}
    assert g.run(jobs=1, **bindings) == g.run(jobs=4, **bindings)

"""Tests for the content-addressed pass-result cache (:mod:`repro.cache`).

Covers the four layers of the tentpole: PAG fingerprinting (content
digest, mutation invalidation, intern-order invariance), cache keys
(pass identity over source + closures, input digests, the Uncacheable
escape hatch), the two-tier store (LRU + disk, encode/decode of set
references, eviction, corruption recovery), and the dataflow
integration (serial and wavefront warm-run skips, metrics, span tags,
``cacheable=False`` opt-out), plus the token-aliasing regression of
the fixpoint identity-key audit.
"""

from __future__ import annotations

import functools
import pickle

import numpy as np
import pytest

from repro.cache import (
    CacheMiss,
    CacheSession,
    DiskStore,
    MemoryLRU,
    PassCache,
    Uncacheable,
    decode_value,
    default_cache,
    default_cache_dir,
    encode_value,
    node_key,
    pass_identity,
    reset_default_cache,
    resolve_cache,
    value_digest,
)
from repro.cache.store import CachedValue
from repro.dataflow.graph import PerFlowGraph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import VertexLabel


def make_pag(name: str = "g", n: int = 6, bump: float = 0.0) -> PAG:
    pag = PAG(name)
    for i in range(n):
        pag.add_vertex(
            VertexLabel.FUNCTION,
            f"f{i}",
            None,
            {"time": float(i) + bump, "debug-info": f"s.c:{i}"},
        )
    for i in range(n - 1):
        pag.add_edge(i, i + 1, EdgeLabel.INTRA_PROCEDURAL, None, {"weight": 1.0})
    return pag


# ----------------------------------------------------------------------
# fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_deterministic_across_rebuilds():
    assert make_pag().fingerprint() == make_pag().fingerprint()


def test_fingerprint_changes_with_content():
    base = make_pag().fingerprint()
    assert make_pag(bump=0.5).fingerprint() != base
    assert make_pag(n=7).fingerprint() != base
    assert make_pag(name="other").fingerprint() != base


def test_fingerprint_invalidated_by_mutation_and_restored_on_revert():
    pag = make_pag()
    fp0 = pag.fingerprint()
    v = pag.vertex(2)
    old = v["time"]
    v["time"] = 99.0
    fp1 = pag.fingerprint()
    assert fp1 != fp0
    v["time"] = old
    assert pag.fingerprint() == fp0


def test_fingerprint_invalidated_by_rename_and_metadata():
    pag = make_pag()
    fp0 = pag.fingerprint()
    pag.vertex(0).name = "renamed"
    fp1 = pag.fingerprint()
    assert fp1 != fp0
    pag.metadata["nprocs"] = 8
    assert pag.fingerprint() != fp1


def test_fingerprint_ignores_unused_interned_strings():
    noisy = PAG("g")
    # Interning unrelated strings first shifts every later string id;
    # the fingerprint must not care (it hashes values in sorted order).
    for junk in ("zzz", "aaa", "noise"):
        noisy.strings.intern(junk)
    for i in range(6):
        noisy.add_vertex(
            VertexLabel.FUNCTION,
            f"f{i}",
            None,
            {"time": float(i), "debug-info": f"s.c:{i}"},
        )
    for i in range(5):
        noisy.add_edge(i, i + 1, EdgeLabel.INTRA_PROCEDURAL, None, {"weight": 1.0})
    assert noisy.fingerprint() == make_pag().fingerprint()


def test_fingerprint_survives_save_load(tmp_path):
    from repro.pag.serialize import load_pag, save_pag

    pag = make_pag()
    pag.metadata["case"] = "x"
    save_pag(pag, tmp_path / "g.json", include_per_rank=True)
    assert load_pag(tmp_path / "g.json").fingerprint() == pag.fingerprint()


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def test_pass_identity_sees_closure_values():
    def mk(n):
        return lambda s: (s, n)

    assert pass_identity(mk(5)) == pass_identity(mk(5))
    assert pass_identity(mk(5)) != pass_identity(mk(6))


def test_pass_identity_recurses_into_partials():
    def f(s, n):
        return s

    assert pass_identity(functools.partial(f, n=3)) == pass_identity(
        functools.partial(f, n=3)
    )
    assert pass_identity(functools.partial(f, n=3)) != pass_identity(
        functools.partial(f, n=4)
    )


def test_pass_identity_rejects_stateful_callables():
    class Analyzer:
        def __call__(self, s):
            return s

        def method(self, s):
            return s

    with pytest.raises(Uncacheable):
        pass_identity(Analyzer())
    with pytest.raises(Uncacheable):
        pass_identity(Analyzer().method)
    # ... including when captured in a closure.
    facade = Analyzer()
    with pytest.raises(Uncacheable):
        pass_identity(lambda s: facade(s))


def test_value_digest_sets_and_registry():
    pag = make_pag()
    reg = {}
    d1 = value_digest(pag.vs, reg)
    assert reg == {pag.fingerprint(): pag}
    assert value_digest(make_pag().vs) == d1
    assert value_digest(make_pag(bump=1.0).vs) != d1
    # subset of ids digests differently
    sub = VertexSet([pag.vertex(i) for i in range(3)])
    assert value_digest(sub) != d1


def test_value_digest_plain_values():
    assert value_digest([1, "a", 2.5]) == value_digest([1, "a", 2.5])
    assert value_digest((1,)) != value_digest([1])
    assert value_digest({"b": 2, "a": 1}) == value_digest({"a": 1, "b": 2})
    assert value_digest(np.arange(3.0)) == value_digest(np.arange(3.0))
    with pytest.raises(Uncacheable):
        value_digest(object())


def test_node_key_varies_by_shape():
    base = node_key("pass", "abc", ["d1", "d2"])
    assert node_key("pass", "abc", ["d1", "d2"]) == base
    assert node_key("fixpoint", "abc", ["d1", "d2"]) != base
    assert node_key("pass", "abd", ["d1", "d2"]) != base
    assert node_key("pass", "abc", ["d1"]) != base
    assert node_key("fixpoint", "abc", ["d1"], max_iters=5) != node_key(
        "fixpoint", "abc", ["d1"], max_iters=6
    )


def test_keys_are_token_free():
    """Regression for the fixpoint identity-key audit: cache keys are
    content-addressed, so a dead PAG's recycled ``token`` can never
    alias a live entry — equal content keys equal, and distinct content
    keys distinct, regardless of token values."""
    a = make_pag()
    token_a = a.token
    digest_a = value_digest(a.vs)
    del a
    b = make_pag()  # same content, necessarily different token
    assert b.token != token_a  # _TOKENS is monotonic, never reused
    assert value_digest(b.vs) == digest_a
    c = make_pag(bump=3.0)  # different content, fresh token
    assert value_digest(c.vs) != digest_a


def test_cached_entry_never_rebinds_to_different_content():
    """A stored set reference names its PAG by fingerprint; a run whose
    live graphs all have different content raises CacheMiss instead of
    silently rebinding (the token-resurrection hazard)."""
    a = make_pag()
    entry = encode_value(a.vs)
    other = make_pag(bump=2.0)
    with pytest.raises(CacheMiss):
        decode_value(entry, {other.fingerprint(): other})
    # with the right content live again, it rebinds fine
    twin = make_pag()
    restored = decode_value(entry, {twin.fingerprint(): twin})
    assert restored._pag is twin
    assert list(restored.ids()) == list(a.vs.ids())


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
def test_encode_decode_roundtrip_golden():
    pag = make_pag()
    value = (pag.vs, {"rows": [1, 2], "sub": EdgeSet(list(pag.edges()))})
    entry = encode_value(value)
    out = decode_value(entry, {pag.fingerprint(): pag})
    assert isinstance(out[0], VertexSet)
    assert list(out[0].ids()) == list(pag.vs.ids())
    assert out[1]["rows"] == [1, 2]
    assert isinstance(out[1]["sub"], EdgeSet)
    assert list(out[1]["sub"].ids()) == list(range(pag.num_edges))


def test_encode_rejects_hidden_graph_identity():
    pag = make_pag()

    class Sneaky:
        def __init__(self, s):
            self.s = s

    with pytest.raises(Uncacheable):
        encode_value(Sneaky(pag.vs))
    with pytest.raises(Uncacheable):
        encode_value(pag.vertex(0))
    with pytest.raises(Uncacheable):
        encode_value(lambda: None)  # unpicklable


def test_decode_unknown_fingerprint_is_cache_miss():
    entry = encode_value(make_pag().vs)
    with pytest.raises(CacheMiss):
        decode_value(entry, {})


def test_memory_lru_eviction():
    def entry(n):
        return CachedValue(b"x" * n, (), n)

    lru = MemoryLRU(max_bytes=100, max_entries=10)
    lru.put("a", entry(40))
    lru.put("b", entry(40))
    lru.get("a")  # refresh a; b is now LRU
    lru.put("c", entry(40))
    assert lru.get("b") is None
    assert lru.get("a") is not None and lru.get("c") is not None

    lru2 = MemoryLRU(max_bytes=10_000, max_entries=2)
    for k in "abc":
        lru2.put(k, entry(1))
    assert lru2.stats()["entries"] == 2
    assert lru2.get("a") is None


def test_disk_store_roundtrip_corruption_and_eviction(tmp_path):
    store = DiskStore(tmp_path / "cache", max_bytes=400)
    entry = CachedValue(b"payload", (("v", None, b""),), 120)
    store.put("aabbcc", entry)
    assert store.get("aabbcc") == entry
    assert store.get("nonexistent") is None

    # corrupt entries are dropped, not fatal
    path = store._path("aabbcc")
    path.write_bytes(b"garbage")
    assert store.get("aabbcc") is None
    assert not path.exists()

    # byte-cap eviction removes oldest entries first
    import os

    big = CachedValue(b"y" * 150, (), 150)
    for i, key in enumerate(["k1aaaa", "k2bbbb", "k3cccc"]):
        store.put(key, big)
        os.utime(store._path(key), (1000.0 + i, 1000.0 + i))
    store.put("k4dddd", big)  # triggers eviction over max_bytes=400
    stats = store.stats()
    assert stats["bytes"] <= 400 + len(pickle.dumps(big, protocol=4))
    assert store.get("k4dddd") is not None
    assert store.get("k1aaaa") is None  # oldest went first

    removed = store.clear()
    assert removed == store.stats()["entries"] or store.stats()["entries"] == 0


def test_pass_cache_promotes_disk_hits_to_memory(tmp_path):
    disk = DiskStore(tmp_path / "c")
    cache = PassCache(MemoryLRU(), disk)
    entry = CachedValue(b"p", (), 1)
    cache.put("deadbeef", entry)
    cache.memory.clear()
    assert cache.get("deadbeef") == entry  # served from disk...
    assert cache.memory.get("deadbeef") == entry  # ...and promoted
    assert cache.stats()["disk"]["entries"] == 1


# ----------------------------------------------------------------------
# resolution: flags and environment
# ----------------------------------------------------------------------
def test_resolve_cache_specs(tmp_path, monkeypatch):
    monkeypatch.delenv("PERFLOW_CACHE", raising=False)
    monkeypatch.delenv("PERFLOW_CACHE_DIR", raising=False)
    reset_default_cache()
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(True) is default_cache()
    assert resolve_cache(True).disk is None  # no dir -> memory-only default
    pc = PassCache()
    assert resolve_cache(pc) is pc
    on_disk = resolve_cache(str(tmp_path / "d"))
    assert isinstance(on_disk.disk, DiskStore)
    with pytest.raises(TypeError):
        resolve_cache(42)


@pytest.mark.parametrize("raw,expect", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("", False), ("0", False), ("false", False), ("off", False), ("no", False),
])
def test_env_cache_parsing(monkeypatch, raw, expect):
    monkeypatch.setenv("PERFLOW_CACHE", raw)
    monkeypatch.delenv("PERFLOW_CACHE_DIR", raising=False)
    reset_default_cache()
    resolved = resolve_cache(None)
    assert (resolved is not None) is expect


def test_env_cache_garbage_raises(monkeypatch):
    monkeypatch.setenv("PERFLOW_CACHE", "banana")
    with pytest.raises(ValueError):
        resolve_cache(None)


def test_default_cache_dir_and_disk_tier(tmp_path, monkeypatch):
    monkeypatch.setenv("PERFLOW_CACHE_DIR", str(tmp_path / "pf"))
    reset_default_cache()
    assert default_cache_dir() == tmp_path / "pf"
    assert isinstance(default_cache().disk, DiskStore)
    monkeypatch.delenv("PERFLOW_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "perflow"
    reset_default_cache()


# ----------------------------------------------------------------------
# dataflow integration
# ----------------------------------------------------------------------
#: Execution log for counting real pass runs.  A module global, not a
#: closure: globals are keyed by *name* only, so appending here does not
#: change the passes' cache identity between runs (a closure over this
#: list would — by design).
EXEC_LOG: list = []


@pytest.fixture(autouse=True)
def _clear_exec_log():
    EXEC_LOG.clear()


def _pipeline(pag: PAG, top: int = 3) -> PerFlowGraph:
    """Three-pass chain logging executions to :data:`EXEC_LOG`."""
    g = PerFlowGraph("cache-test")
    V = g.input("V", VertexSet)

    def keep_slow(s):
        EXEC_LOG.append("keep_slow")
        return VertexSet([v for v in s if (v["time"] or 0.0) > 1.0])

    def top_n(s):
        EXEC_LOG.append("top_n")
        return VertexSet(sorted(s, key=lambda v: -(v["time"] or 0.0))[:top])

    def names(s):
        EXEC_LOG.append("names")
        return [v.name for v in s]

    a = g.add_pass(keep_slow, V, name="keep_slow")
    b = g.add_pass(top_n, a, name="top_n")
    g.add_pass(names, b, name="names")
    return g


def _counter(name: str) -> float:
    return obs_metrics.counter(name).value


def test_serial_warm_run_skips_every_pass():
    pag = make_pag()
    cache = PassCache()
    g = _pipeline(pag)
    out1 = g.run(jobs=1, cache=cache, V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"]
    assert _counter("dataflow.cache.misses") == 3
    assert _counter("dataflow.cache.bytes") > 0

    out2 = _pipeline(pag).run(jobs=1, cache=cache, V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"]  # nothing re-executed
    assert _counter("dataflow.cache.hits") == 3
    assert out2["names"] == out1["names"]
    assert list(out2["top_n"].ids()) == list(out1["top_n"].ids())
    assert out2["top_n"]._pag is pag  # rebound to the live graph


def test_wavefront_warm_run_skips_every_pass():
    pag = make_pag()
    cache = PassCache()
    g = _pipeline(pag)
    out1 = g.run(jobs=4, backend="thread", cache=cache, V=pag.vs)
    out2 = _pipeline(pag).run(jobs=4, backend="thread", cache=cache, V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"]
    assert _counter("dataflow.cache.hits") == 3
    assert out2["names"] == out1["names"]
    # Hit nodes were never submitted to the pool: run 1 executed all 4
    # nodes, run 2 only the input node (its 3 passes were cache hits).
    assert obs_metrics.counter("dataflow.scheduler.nodes_parallel").value == 5


def test_serial_and_wavefront_share_cache_entries():
    pag = make_pag()
    cache = PassCache()
    _pipeline(pag).run(jobs=1, cache=cache, V=pag.vs)
    _pipeline(pag).run(jobs=4, cache=cache, V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"]
    assert _counter("dataflow.cache.hits") == 3


def test_mutation_invalidates_cached_results():
    pag = make_pag()
    cache = PassCache()
    _pipeline(pag).run(backend="thread", cache=cache, V=pag.vs)
    pag.vertex(5)["time"] = 123.0
    out = _pipeline(pag).run(backend="thread", cache=cache, V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"] * 2  # all re-executed
    assert out["names"][0] == "f5"


def test_closure_parameter_changes_miss():
    pag = make_pag()
    cache = PassCache()
    _pipeline(pag, top=3).run(backend="thread", cache=cache, V=pag.vs)
    out = _pipeline(pag, top=2).run(backend="thread", cache=cache, V=pag.vs)
    # keep_slow is param-independent (hit); top_n and names re-execute
    assert EXEC_LOG == ["keep_slow", "top_n", "names", "top_n", "names"]
    assert len(out["names"]) == 2


def test_cacheable_false_always_executes():
    pag = make_pag()
    runs: list = []

    def impure(s):
        runs.append(1)
        return s

    def build():
        g = PerFlowGraph("impure")
        V = g.input("V", VertexSet)
        g.add_pass(impure, V, name="impure", cacheable=False)
        return g

    cache = PassCache()
    build().run(cache=cache, V=pag.vs)
    build().run(cache=cache, V=pag.vs)
    assert len(runs) == 2
    assert _counter("dataflow.cache.uncacheable") == 2
    assert _counter("dataflow.cache.hits") == 0


def test_uncacheable_closure_executes_without_caching():
    pag = make_pag()

    class Facade:
        def pick(self, s):
            return s

    facade = Facade()

    def build():
        g = PerFlowGraph("facade")
        V = g.input("V", VertexSet)
        g.add_pass(lambda s: facade.pick(s), V, name="pick")
        return g

    cache = PassCache()
    out1 = build().run(cache=cache, V=pag.vs)
    out2 = build().run(cache=cache, V=pag.vs)
    assert list(out1["pick"].ids()) == list(out2["pick"].ids())
    assert _counter("dataflow.cache.uncacheable") == 2
    assert _counter("dataflow.cache.hits") == 0


def test_fixpoint_results_cached():
    pag = make_pag()

    def grow(s):
        EXEC_LOG.append("grow")
        if len(s) >= 4:
            return s
        return VertexSet([s._pag.vertex(i) for i in range(len(s) + 1)])

    def build():
        g = PerFlowGraph("fix")
        V = g.input("V", VertexSet)
        g.add_fixpoint(grow, V, max_iters=10, name="grow")
        return g

    cache = PassCache()
    seed = VertexSet([pag.vertex(0)])
    out1 = build().run(backend="thread", cache=cache, V=seed)
    n_cold = len(EXEC_LOG)
    assert n_cold > 1
    out2 = build().run(backend="thread", cache=cache, V=seed)
    assert len(EXEC_LOG) == n_cold  # warm run never iterated
    assert _counter("dataflow.cache.hits") == 1
    assert list(out2["grow"].ids()) == list(out1["grow"].ids())


def test_cache_hit_span_tags():
    pag = make_pag()
    cache = PassCache()
    _pipeline(pag).run(cache=cache, V=pag.vs)
    rec = obs_trace.enable()
    try:
        _pipeline(pag).run(cache=cache, V=pag.vs)
    finally:
        obs_trace.disable()
    pipeline = [s for s in rec.spans if s.name.startswith("pipeline:")]
    assert pipeline and pipeline[0].args["cached"] is True
    node_spans = [s for s in rec.spans if s.name.startswith("node:")]
    tags = {s.name: s.args.get("cache_hit") for s in node_spans}
    assert tags == {
        "node:V": None,  # input nodes carry no cache tag
        "node:keep_slow": True,
        "node:top_n": True,
        "node:names": True,
    }


def test_session_counters_mirror_metrics():
    pag = make_pag()
    cache = PassCache()
    session = CacheSession(cache)
    g = _pipeline(pag)
    node = g._nodes[1]
    hit, _ = session.probe(node, [pag.vs])
    assert not hit and session.misses == 1
    session.store(node, pag.vs)
    assert session.stored_bytes > 0
    hit, value = session.probe(node, [pag.vs])
    # same session memoizes the key; a fresh session recomputes it
    session2 = CacheSession(cache)
    hit2, value2 = session2.probe(node, [pag.vs])
    assert hit2 and session2.hits == 1
    assert list(value2.ids()) == list(pag.vs.ids())


def test_run_cache_env_default(monkeypatch):
    pag = make_pag()
    monkeypatch.setenv("PERFLOW_CACHE", "1")
    monkeypatch.setenv("PERFLOW_BACKEND", "thread")
    monkeypatch.delenv("PERFLOW_CACHE_DIR", raising=False)
    reset_default_cache()
    _pipeline(pag).run(V=pag.vs)
    _pipeline(pag).run(V=pag.vs)
    assert EXEC_LOG == ["keep_slow", "top_n", "names"]
    assert _counter("dataflow.cache.hits") == 3
    # cache=False overrides the environment
    _pipeline(pag).run(cache=False, V=pag.vs)
    assert len(EXEC_LOG) == 6
    reset_default_cache()


def test_perflow_facade_cache_dir(tmp_path):
    from repro.apps import npb
    from repro.dataflow.api import PerFlow
    from repro.paradigms.mpi_profiler import mpi_profiler_paradigm

    pflow = PerFlow(cache_dir=tmp_path / "pf")
    pag = pflow.run(bin=npb.build_cg("S", iterations=2), nprocs=4)
    rows1 = mpi_profiler_paradigm(pflow, pag, top=5)
    assert _counter("dataflow.cache.misses") == 3
    rows2 = mpi_profiler_paradigm(pflow, pag, top=5)
    assert _counter("dataflow.cache.hits") == 3
    assert rows1 == rows2
    assert DiskStore(tmp_path / "pf").stats()["entries"] == 3


def test_mpi_profiler_warm_rerun_acceptance():
    """The issue's acceptance criterion: a warm-cache rerun of the
    mpi_profiler paradigm on cg skips every pass node, verified via the
    ``dataflow.cache.hits`` metric and golden equality."""
    from repro.apps import npb
    from repro.dataflow.api import PerFlow
    from repro.paradigms.mpi_profiler import mpi_profiler_paradigm

    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_cg("S", iterations=3), nprocs=8)
    cache = PassCache()
    golden = mpi_profiler_paradigm(pflow, pag, top=10, cache=cache)
    assert _counter("dataflow.cache.hits") == 0
    warm = mpi_profiler_paradigm(pflow, pag, top=10, cache=cache)
    assert _counter("dataflow.cache.hits") == 3  # every pass node skipped
    assert _counter("dataflow.cache.misses") == 3  # all from the cold run
    assert warm == golden

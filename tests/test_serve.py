"""repro.serve: protocol, end-to-end serving, admission, single-flight."""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from tests.conftest import make_ring_program
from repro.dataflow.api import PerFlow
from repro.dataflow.graph import PerFlowGraph
from repro.obs import metrics as obs_metrics
from repro.pag.formats import pag_to_dict, save_pag
from repro.pag.sets import EdgeSet, VertexSet
from repro.passes.hotspot import hotspot_detection
from repro.serve import (
    PipelineSpec,
    ProtocolError,
    ServerConfig,
    parse_analyze_request,
    register_pipeline,
    unregister_pipeline,
)
from repro.serve.client import ServerThread, analyze, http_request
from repro.serve.pipelines import build_graph

# ----------------------------------------------------------------------
# test pipelines (module level: stable pass identities)
# ----------------------------------------------------------------------
BLOCK_EVENT = threading.Event()
BLOCK_EXECUTIONS: list = []


def _blocking_rows(V: VertexSet) -> list:
    BLOCK_EXECUTIONS.append(1)
    BLOCK_EVENT.wait(timeout=30)
    return [{"vertices": len(V)}]


def _build_block(params):
    salt = int(params["salt"])
    g = PerFlowGraph("serve-block")
    V = g.input("V", VertexSet)
    g.add_pass(
        lambda s: _blocking_rows(s) + [{"salt": salt}],
        V,
        name="result",
        signature=((VertexSet,), ("any",)),
    )
    return g


FAIL_EVENT = threading.Event()
FAIL_EXECUTIONS: list = []
FAIL_REMAINING = {"n": 0}


def _fail_once_rows(V: VertexSet) -> list:
    FAIL_EXECUTIONS.append(1)
    FAIL_EVENT.wait(timeout=30)
    if FAIL_REMAINING["n"] > 0:
        FAIL_REMAINING["n"] -= 1
        raise RuntimeError("injected leader failure")
    return [{"ok": True}]


def _build_failonce(params):
    g = PerFlowGraph("serve-failonce")
    V = g.input("V", VertexSet)
    # cacheable=False: followers that retry after a failed leader must
    # genuinely re-execute, not pick the answer out of the cache.
    g.add_pass(
        _fail_once_rows,
        V,
        name="result",
        signature=((VertexSet,), ("any",)),
        cacheable=False,
    )
    return g


def _build_badwire(params):
    g = PerFlowGraph("serve-badwire")
    E = g.input("V", EdgeSet)
    g.add_pass(
        hotspot_detection,
        E,
        name="result",
        signature=((VertexSet,), (VertexSet,)),
    )
    return g


@pytest.fixture()
def test_pipelines():
    BLOCK_EVENT.clear()
    FAIL_EVENT.clear()
    del BLOCK_EXECUTIONS[:]
    del FAIL_EXECUTIONS[:]
    FAIL_REMAINING["n"] = 0
    register_pipeline(
        PipelineSpec("block", "blocks until released", _build_block, {"salt": 0})
    )
    register_pipeline(
        PipelineSpec("failonce", "fails the first execution", _build_failonce, {})
    )
    register_pipeline(PipelineSpec("badwire", "fails check()", _build_badwire, {}))
    yield
    BLOCK_EVENT.set()
    FAIL_EVENT.set()
    for name in ("block", "failonce", "badwire"):
        unregister_pipeline(name)


@pytest.fixture(scope="module")
def ring_pag_doc():
    pag = PerFlow().run(bin=make_ring_program(), nprocs=4)
    return pag_to_dict(pag, include_per_rank=True)


# ----------------------------------------------------------------------
# protocol parsing
# ----------------------------------------------------------------------
def test_parse_minimal_request():
    req = parse_analyze_request(b'{"pipeline": "hotspot", "pag_path": "x.pag3"}')
    assert req.pipeline == "hotspot"
    assert req.pag_path == "x.pag3"
    assert req.params == {} and req.pag_doc is None


@pytest.mark.parametrize(
    "body",
    [
        b"not json",
        b"[1, 2]",
        b'{"pag_path": "x"}',  # no pipeline
        b'{"pipeline": "", "pag_path": "x"}',
        b'{"pipeline": "h"}',  # neither pag nor pag_path
        b'{"pipeline": "h", "pag": {}, "pag_path": "x"}',  # both
        b'{"pipeline": "h", "pag_path": "x", "params": [1]}',
        b'{"pipeline": "h", "pag_path": "x", "params": {"a": [1]}}',
        b'{"pipeline": "h", "pag_path": "x", "bogus": 1}',
        b'{"pipeline": "h", "pag_path": "x", "request_id": 7}',
    ],
)
def test_parse_rejects_malformed(body):
    with pytest.raises(ProtocolError) as exc:
        parse_analyze_request(body)
    assert exc.value.status == 400


def test_build_graph_rejects_unknown_params():
    with pytest.raises(ValueError, match="bogus"):
        build_graph("hotspot", {"bogus": 1})
    with pytest.raises(KeyError):
        build_graph("no-such-pipeline", {})


# ----------------------------------------------------------------------
# end-to-end over a real socket
# ----------------------------------------------------------------------
def test_serve_end_to_end_inline_and_path(tmp_path, ring_pag_doc):
    pag = PerFlow().run(bin=make_ring_program(), nprocs=4)
    pag_file = tmp_path / "ring.pag3"
    save_pag(pag, pag_file, format=3)
    with ServerThread(ServerConfig(port=0, cache=True)) as st:
        status, _, body = http_request(st.host, st.port, "GET", "/healthz")
        assert status == 200 and b'"ok"' in body

        status, events = analyze(
            st.host,
            st.port,
            {"pipeline": "hotspot", "pag": ring_pag_doc, "request_id": "r1"},
        )
        assert status == 200
        assert [e["event"] for e in events] == ["accepted", "started", "result"]
        assert events[0]["request_id"] == "r1"
        rows = events[-1]["result"]
        assert rows and all("time" in r for r in rows)

        # Same analysis through an on-disk format-3 reference.
        status, events = analyze(
            st.host,
            st.port,
            {"pipeline": "hotspot", "pag_path": str(pag_file)},
        )
        assert status == 200 and events[-1]["event"] == "result"
        assert events[-1]["result"] == rows

        status, _, body = http_request(st.host, st.port, "GET", "/metrics")
        assert status == 200 and b"serve.latency_ms" in body

        status, _, _ = http_request(st.host, st.port, "GET", "/nope")
        assert status == 404


def test_serve_bad_requests(ring_pag_doc, test_pipelines):
    with ServerThread(ServerConfig(port=0)) as st:
        status, docs = analyze(st.host, st.port, {"pipeline": "hotspot"})
        assert status == 400 and docs[0]["error"]["code"] == "bad-request"

        status, docs = analyze(
            st.host, st.port, {"pipeline": "nope", "pag": ring_pag_doc}
        )
        assert status == 400 and docs[0]["error"]["code"] == "unknown-pipeline"

        status, docs = analyze(
            st.host,
            st.port,
            {"pipeline": "hotspot", "pag": ring_pag_doc, "params": {"bogus": 1}},
        )
        assert status == 400 and docs[0]["error"]["code"] == "bad-params"

        status, docs = analyze(
            st.host, st.port, {"pipeline": "hotspot", "pag_path": "/no/such/file"}
        )
        assert status == 400 and docs[0]["error"]["code"] == "bad-pag"

        # A mis-wired pipeline is rejected by check() with PF8## payloads.
        status, docs = analyze(
            st.host, st.port, {"pipeline": "badwire", "pag": ring_pag_doc}
        )
        assert status == 400 and docs[0]["error"]["code"] == "pipeline-check"
        assert docs[0]["error"]["diagnostics"][0]["code"].startswith("PF8")


def _wait_for(cond, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(0.01)


def test_admission_control_429(ring_pag_doc, test_pipelines):
    with ServerThread(
        ServerConfig(port=0, max_concurrent=1, max_queue=0, backend="thread")
    ) as st:
        results = {}

        def first():
            results["first"] = analyze(
                st.host, st.port, {"pipeline": "block", "pag": ring_pag_doc}
            )

        t = threading.Thread(target=first)
        t.start()
        try:
            _wait_for(lambda: len(BLOCK_EXECUTIONS) == 1, what="leader to start")
            status, _, body = http_request(
                st.host,
                st.port,
                "POST",
                "/v1/analyze",
                body=(
                    b'{"pipeline": "block", "params": {"salt": 2}, '
                    + b'"pag": '
                    + _json_bytes(ring_pag_doc)
                    + b"}"
                ),
            )
            assert status == 429
            assert b"overloaded" in body
            assert obs_metrics.counter("serve.rejected").value == 1
        finally:
            BLOCK_EVENT.set()
            t.join(timeout=15)
        assert results["first"][0] == 200
        # The Retry-After header made it out too.
        status, headers, _ = _rejected_once(st, ring_pag_doc)
        if status == 429:
            assert "retry-after" in headers


def _rejected_once(st, doc):
    """One more (non-blocking) request purely to inspect headers."""
    import json as json_mod

    return http_request(
        st.host,
        st.port,
        "POST",
        "/v1/analyze",
        body=json_mod.dumps({"pipeline": "hotspot", "pag": doc}).encode(),
    )


def _json_bytes(doc) -> bytes:
    import json as json_mod

    return json_mod.dumps(doc).encode("utf-8")


def test_single_flight_collapses_identical_requests(ring_pag_doc, test_pipelines):
    """Satellite: N identical concurrent requests execute exactly once."""
    n = 8
    with ServerThread(ServerConfig(port=0, cache=True, max_concurrent=4, backend="thread")) as st:
        results = [None] * n

        def worker(i):
            results[i] = analyze(
                st.host, st.port, {"pipeline": "block", "pag": ring_pag_doc}
            )

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        try:
            _wait_for(lambda: len(BLOCK_EXECUTIONS) == 1, what="leader execution")
            _wait_for(
                lambda: sum(st.server._flight._waiters.values()) == n - 1,
                what=f"{n - 1} followers parked on the leader",
            )
        finally:
            BLOCK_EVENT.set()
        for t in threads:
            t.join(timeout=15)

        assert all(r is not None and r[0] == 200 for r in results)
        finals = [r[1][-1] for r in results]
        assert all(e["event"] == "result" for e in finals)
        # The pipeline body ran exactly once; everyone shares its rows.
        assert len(BLOCK_EXECUTIONS) == 1
        assert sum(1 for e in finals if e["collapsed"]) == n - 1
        assert obs_metrics.counter("serve.collapsed").value == n - 1
        # Cache evidence: one miss (the leader's node), zero stale hits.
        assert obs_metrics.counter("dataflow.cache.misses").value == 1
        assert obs_metrics.counter("dataflow.cache.hits").value == 0
        first = finals[0]["result"]
        assert all(e["result"] == first for e in finals)


def test_failed_leader_does_not_poison_followers(ring_pag_doc, test_pipelines):
    """Satellite: followers of a failed leader re-execute, not re-raise."""
    FAIL_REMAINING["n"] = 1
    with ServerThread(ServerConfig(port=0, max_concurrent=4, backend="thread")) as st:
        results = {}

        def worker(tag):
            results[tag] = analyze(
                st.host, st.port, {"pipeline": "failonce", "pag": ring_pag_doc}
            )

        leader = threading.Thread(target=worker, args=("leader",))
        leader.start()
        try:
            _wait_for(lambda: len(FAIL_EXECUTIONS) == 1, what="leader execution")
            followers = [
                threading.Thread(target=worker, args=(f"f{i}",)) for i in range(2)
            ]
            for t in followers:
                t.start()
            _wait_for(
                lambda: sum(st.server._flight._waiters.values()) == 2,
                what="followers parked",
            )
        finally:
            FAIL_EVENT.set()
        leader.join(timeout=15)
        for t in followers:
            t.join(timeout=15)

        # The leader saw the injected failure as a streamed error event.
        status, events = results["leader"]
        assert status == 200
        assert events[-1]["event"] == "error"
        assert "injected leader failure" in events[-1]["message"]
        # Followers re-executed (a second real execution happened) and
        # got genuine results — not the leader's stale error.
        for tag in ("f0", "f1"):
            status, events = results[tag]
            assert status == 200
            assert events[-1]["event"] == "result"
            assert events[-1]["result"] == [{"ok": True}]
        assert len(FAIL_EXECUTIONS) >= 2


def test_draining_rejects_new_requests(ring_pag_doc):
    with ServerThread(ServerConfig(port=0)) as st:
        st.server.draining = True
        status, docs = analyze(
            st.host, st.port, {"pipeline": "hotspot", "pag": ring_pag_doc}
        )
        assert status == 503 and docs[0]["error"]["code"] == "draining"
        status, _, body = http_request(st.host, st.port, "GET", "/healthz")
        assert status == 200 and b"draining" in body
        st.server.draining = False


def test_drain_completes_inflight_requests(ring_pag_doc, test_pipelines):
    st = ServerThread(ServerConfig(port=0, drain_timeout=20.0, backend="thread")).start()
    results = {}

    def worker():
        results["r"] = analyze(
            st.host, st.port, {"pipeline": "block", "pag": ring_pag_doc}
        )

    t = threading.Thread(target=worker)
    t.start()
    try:
        _wait_for(lambda: len(BLOCK_EXECUTIONS) == 1, what="request in flight")
        # Begin the drain while the request is still executing...
        assert st._loop is not None
        st._loop.call_soon_threadsafe(st.server.request_drain)
        _wait_for(lambda: st.server.draining, what="draining flag")
    finally:
        time.sleep(0.05)
        BLOCK_EVENT.set()
    t.join(timeout=15)
    st.stop()
    # ...and the in-flight request still completed with its result.
    assert results["r"][0] == 200
    assert results["r"][1][-1]["event"] == "result"


class _GoneWriter:
    """A StreamWriter stand-in whose client vanished: drain() raises."""

    def __init__(self):
        self.chunks = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        raise ConnectionResetError("client went away")


def test_disconnect_after_stream_start_releases_admission(ring_pag_doc):
    """Regression: a disconnect at the stream-start drain point must
    release the admission slot.  Previously the accepted/started drain
    sat outside the release path, so each such disconnect leaked one
    slot until the server answered 429 forever."""
    from repro.serve.server import ReproServer

    server = ReproServer(ServerConfig(max_concurrent=1, max_queue=1))
    body = json.dumps({"pipeline": "hotspot", "pag": ring_pag_doc}).encode()

    async def _one():
        with pytest.raises(ConnectionResetError):
            await server._handle_analyze(_GoneWriter(), body)

    try:
        # Strictly more disconnects than max_concurrent + max_queue:
        # with the leak, request 3 would already be rejected.
        for _ in range(4):
            asyncio.run(_one())
        assert server._admission.admitted == 0
        server._admission.admit()  # capacity intact, no 429
        server._admission.release()
    finally:
        server._pool.shutdown(wait=True)


def test_admission_slots_bind_the_running_loop():
    """Regression: the execution-slot semaphore must be created inside
    the loop that uses it, not in __init__ — on Python 3.9 an eagerly
    constructed Semaphore binds the constructing thread's loop, and the
    server constructs on one thread but serves on another."""
    from repro.serve.queue import AdmissionController

    ctl = AdmissionController(max_concurrent=1, max_queue=0)  # no loop yet
    assert ctl._slots is None

    async def _use() -> bool:
        async def _leader():
            async with ctl:
                await asyncio.sleep(0.01)

        # Two leaders contend for the single slot, forcing a real
        # (loop-bound) semaphore wait — the 3.9 failure mode.
        await asyncio.gather(_leader(), _leader())
        return True

    out = {}
    t = threading.Thread(target=lambda: out.update(ok=asyncio.run(_use())))
    t.start()
    t.join(timeout=15)
    assert out.get("ok") is True
    assert ctl._slots is not None and ctl.running == 0


def test_header_flood_rejected_431():
    """Pre-admission header reading is bounded: 431 beyond the cap."""
    from repro.serve.server import MAX_HEADER_LINES

    with ServerThread(ServerConfig(port=0)) as st:
        with socket.create_connection((st.host, st.port), timeout=15) as s:
            # One more header line than the cap, and no terminating
            # blank line: the server reads exactly what we sent, so it
            # answers with a clean FIN (no RST racing the response).
            flood = b"".join(
                b"x-flood-%d: v\r\n" % i for i in range(MAX_HEADER_LINES + 1)
            )
            s.sendall(b"GET /healthz HTTP/1.1\r\n" + flood)
            s.settimeout(15)
            resp = b""
            while True:
                chunk = s.recv(4096)
                if not chunk:
                    break
                resp += chunk
    assert resp.split(b"\r\n", 1)[0].split()[1] == b"431"
    assert b"headers-too-large" in resp


def test_pag_root_restricts_pag_path(tmp_path):
    """With --pag-root, pag_path requests outside the root are 403."""
    pag = PerFlow().run(bin=make_ring_program(), nprocs=4)
    root = tmp_path / "allowed"
    root.mkdir()
    inside = root / "ring.pag3"
    outside = tmp_path / "outside.pag3"
    save_pag(pag, inside, format=3)
    save_pag(pag, outside, format=3)

    with ServerThread(ServerConfig(port=0, pag_root=str(root))) as st:
        status, events = analyze(
            st.host, st.port, {"pipeline": "hotspot", "pag_path": str(inside)}
        )
        assert status == 200 and events[-1]["event"] == "result"
        for bad in (
            str(outside),
            str(root / ".." / "outside.pag3"),  # traversal out of the root
            "/etc/hostname",
        ):
            status, docs = analyze(
                st.host, st.port, {"pipeline": "hotspot", "pag_path": bad}
            )
            assert status == 403
            assert docs[0]["error"]["code"] == "path-denied"
            # The denial leaks no filesystem detail about the target.
            assert bad not in docs[0]["error"]["message"]
        # Inline uploads are unaffected by the allow-list.
        status, events = analyze(
            st.host,
            st.port,
            {"pipeline": "hotspot", "pag": pag_to_dict(pag, include_per_rank=True)},
        )
        assert status == 200 and events[-1]["event"] == "result"


def test_per_request_ledger_records(tmp_path, ring_pag_doc):
    from repro.obs.ledger import Ledger

    ledger_dir = str(tmp_path / "serve-ledger")
    with ServerThread(ServerConfig(port=0, ledger_dir=ledger_dir)) as st:
        for _ in range(2):
            status, events = analyze(
                st.host, st.port, {"pipeline": "hotspot", "pag": ring_pag_doc}
            )
            assert status == 200 and events[-1]["event"] == "result"
    records = Ledger(ledger_dir).history(limit=0)
    assert len(records) == 2
    assert all(r["command"] == "serve" for r in records)
    assert all(r["paradigm"] == "hotspot" for r in records)
    assert all(r["pag_fingerprints"] for r in records)

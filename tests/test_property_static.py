"""Property-based tests: random IR programs through static analysis,
embedding, and view construction keep their invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
)
from repro.ir.static_analysis import analyze
from repro.pag.validate import validate_parallel, validate_top_down
from repro.pag.views import (
    build_parallel_view,
    build_top_down_view,
    parallel_view_stats,
)
from repro.runtime.executor import run_program

# ---------------------------------------------------------------------------
# random IR generator: bounded-depth node trees with optional helper calls
# ---------------------------------------------------------------------------
node_kind = st.sampled_from(["stmt", "loop", "branch", "call", "allreduce"])


@st.composite
def body_strategy(draw, depth: int, allow_calls: bool, allow_comm: bool = True):
    # Collectives (and helper calls, whose body may hold collectives) are
    # forbidden inside rank-dependent branches: every rank must execute
    # the same collective sequence, exactly as real MPI requires.
    n = draw(st.integers(min_value=1, max_value=4))
    body = []
    for i in range(n):
        kind = draw(node_kind)
        if kind == "stmt" or depth <= 0 and kind in ("loop", "branch"):
            body.append(Stmt(f"s{depth}_{i}", cost=draw(st.floats(0.0, 0.01)), line=i))
        elif kind == "loop":
            trips = draw(st.integers(min_value=1, max_value=3))
            body.append(
                Loop(
                    trips=trips,
                    body=draw(body_strategy(depth - 1, allow_calls, allow_comm)),
                    line=i,
                )
            )
        elif kind == "branch":
            then = draw(body_strategy(depth - 1, False, allow_comm=False))
            other = draw(body_strategy(depth - 1, False, allow_comm=False))
            parity = draw(st.booleans())
            body.append(
                Branch(
                    (lambda p: (lambda ctx: (ctx.rank % 2 == 0) == p))(parity),
                    then_body=then,
                    else_body=other,
                    line=i,
                )
            )
        elif kind == "call" and allow_calls:
            body.append(Call("helper", line=i))
        elif allow_comm:
            body.append(CommCall(CommOp.ALLREDUCE, nbytes=8, line=i))
        else:
            body.append(Stmt(f"f{depth}_{i}", cost=draw(st.floats(0.0, 0.005)), line=i))
    return body


@st.composite
def program_strategy(draw):
    p = Program(name="rand")
    p.add_function(
        Function("helper", draw(body_strategy(1, allow_calls=False)), source_file="r.c", line=1)
    )
    p.add_function(
        Function("main", draw(body_strategy(2, allow_calls=True)), source_file="r.c", line=50)
    )
    return p


@settings(max_examples=40, deadline=None)
@given(program_strategy())
def test_static_analysis_always_yields_valid_tree(program):
    res = analyze(program)
    validate_top_down(res.pag)
    # the path index is a bijection onto vertex ids
    assert len(res.path_to_vertex) == res.pag.num_vertices
    assert sorted(res.path_to_vertex.values()) == list(range(res.pag.num_vertices))


@settings(max_examples=20, deadline=None)
@given(program_strategy(), st.integers(min_value=1, max_value=4))
def test_embedding_conserves_time(program, nprocs):
    run = run_program(program, nprocs=nprocs)
    td, _sr = build_top_down_view(program, run)
    root = td.vertex(0)
    total = sum(run.per_rank_elapsed.values())
    assert abs((root["time"] or 0.0) - total) < 1e-9 + 1e-6 * total
    # every executed context resolved (no unresolved embeddings)
    assert td.metadata["unresolved_contexts"] == 0


@settings(max_examples=15, deadline=None)
@given(program_strategy(), st.integers(min_value=1, max_value=3))
def test_parallel_view_valid_and_sized(program, nprocs):
    run = run_program(program, nprocs=nprocs)
    td, sr = build_top_down_view(program, run)
    pv = build_parallel_view(td, sr, run)
    validate_parallel(pv, td.num_vertices)
    assert parallel_view_stats(td, run) == (pv.num_vertices, pv.num_edges)

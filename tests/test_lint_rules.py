"""Per-rule tests for the static analyzer (repro.lint).

Each rule gets a positive case (a minimal hand-built IR program that
exhibits the pathology) and a negative case (the closest clean variant),
so false positives are pinned down as tightly as detections.
"""

import json
from types import SimpleNamespace

import pytest

from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.lint import (
    Finding,
    LintConfig,
    LintContext,
    Severity,
    get_rule,
    lint_program,
    register,
    rule,
    unregister,
)
from repro.pag.graph import PAG
from repro.pag.vertex import VertexLabel


def make_program(body, extra=(), name="toy"):
    prog = Program(name=name, entry="main")
    prog.add_function(Function("main", list(body), source_file="main.c", line=1))
    for func in extra:
        prog.add_function(func)
    return prog


def codes_of(prog, code, **cfg):
    config = LintConfig(**cfg) if cfg else None
    return lint_program(prog, config, codes=[code]).by_code(code)


def ring_send(tag=0):
    return CommCall(CommOp.SEND, peer=lambda c: (c.rank + 1) % c.nprocs, tag=tag, line=10)


def ring_recv(tag=0):
    return CommCall(CommOp.RECV, peer=lambda c: (c.rank - 1) % c.nprocs, tag=tag, line=11)


# ---------------------------------------------------------------------------
# PF001 — blocking p2p in a hot loop
# ---------------------------------------------------------------------------
def test_pf001_flags_blocking_send_in_loop():
    prog = make_program([Loop(4, [ring_send(), ring_recv()], name="exchange", line=5)])
    diags = codes_of(prog, "PF001")
    assert len(diags) == 2
    assert "MPI_Send" in diags[0].message
    assert diags[0].file == "main.c"
    assert diags[0].line == 10
    assert diags[0].severity is Severity.WARNING


def test_pf001_flags_call_reached_from_loop():
    exchange = Function("exchange", [ring_send(), ring_recv()], source_file="comm.c")
    prog = make_program([Loop(4, [Call("exchange")], name="steps")], extra=[exchange])
    diags = codes_of(prog, "PF001")
    assert len(diags) == 2
    assert all("a function reached from a loop" in d.message for d in diags)


def test_pf001_ignores_nonblocking_and_straightline():
    prog = make_program(
        [
            Loop(
                4,
                [
                    CommCall(CommOp.ISEND, peer=lambda c: (c.rank + 1) % c.nprocs, req="r"),
                    CommCall(CommOp.IRECV, peer=lambda c: (c.rank - 1) % c.nprocs, req="s"),
                    CommCall(CommOp.WAITALL),
                ],
            ),
            ring_send(),  # blocking, but outside any loop
        ]
    )
    assert codes_of(prog, "PF001") == []


# ---------------------------------------------------------------------------
# PF002 — statically unmatchable blocking p2p
# ---------------------------------------------------------------------------
def test_pf002_flags_recv_with_no_matching_send():
    prog = make_program(
        [CommCall(CommOp.RECV, peer=lambda c: (c.rank + 1) % c.nprocs, tag=99, line=7)]
    )
    diags = codes_of(prog, "PF002")
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "potential deadlock" in diags[0].message


def test_pf002_flags_tag_mismatch():
    prog = make_program([ring_send(tag=1), ring_recv(tag=2)])
    flagged = codes_of(prog, "PF002")
    assert len(flagged) == 2  # the send and the recv both lack a counterpart


def test_pf002_accepts_matched_ring():
    prog = make_program([Loop(3, [ring_send(tag=5), ring_recv(tag=5)])])
    assert codes_of(prog, "PF002") == []


def test_pf002_accepts_sendrecv_pairs_and_guarded_edges():
    # LU-style guarded sweep: interior ranks relay, boundary ranks only
    # send or only receive — matchable, hence clean.
    prog = make_program(
        [
            Branch(
                lambda c: c.rank > 0,
                [CommCall(CommOp.RECV, peer=lambda c: c.rank - 1, tag=3)],
                name="has_up",
            ),
            Branch(
                lambda c: c.rank < c.nprocs - 1,
                [CommCall(CommOp.SEND, peer=lambda c: c.rank + 1, tag=3)],
                name="has_down",
            ),
        ]
    )
    assert codes_of(prog, "PF002") == []


# ---------------------------------------------------------------------------
# PF003 — collective under a rank-divergent branch
# ---------------------------------------------------------------------------
def test_pf003_flags_collective_on_one_path_only():
    prog = make_program(
        [
            Branch(
                lambda c: c.rank == 0,
                [CommCall(CommOp.BARRIER, line=21)],
                [],
                name="root_only",
                line=20,
            )
        ]
    )
    diags = codes_of(prog, "PF003")
    assert len(diags) == 1
    assert "MPI_Barrier" in diags[0].message
    assert diags[0].severity is Severity.ERROR


def test_pf003_sees_collectives_hidden_behind_user_calls():
    helper = Function("sync", [CommCall(CommOp.ALLREDUCE)], source_file="sync.c")
    prog = make_program(
        [Branch(lambda c: c.rank % 2 == 0, [Call("sync")], [], name="evens")],
        extra=[helper],
    )
    assert len(codes_of(prog, "PF003")) == 1


def test_pf003_accepts_uniform_condition_and_symmetric_paths():
    prog = make_program(
        [
            # condition identical on every rank: no divergence
            Branch(lambda c: c.params.get("opt", False), [CommCall(CommOp.BARRIER)], []),
            # divergent condition but identical collective sequences
            Branch(
                lambda c: c.rank == 0,
                [Stmt("a", 1.0), CommCall(CommOp.BCAST)],
                [Stmt("b", 2.0), CommCall(CommOp.BCAST)],
            ),
        ]
    )
    assert codes_of(prog, "PF003") == []


# ---------------------------------------------------------------------------
# PF004 — allocator / lock serialization in threaded loops
# ---------------------------------------------------------------------------
def test_pf004_flags_alloc_in_threaded_loop():
    prog = make_program(
        [
            ThreadCall(
                ThreadOp.CREATE,
                count=4,
                body=[Loop(100, [ThreadCall(ThreadOp.ALLOC, hold=1e-6, line=31)])],
            )
        ]
    )
    diags = codes_of(prog, "PF004")
    assert len(diags) == 1
    assert "allocator" in diags[0].message
    assert diags[0].line == 31


def test_pf004_flags_lock_held_across_comm():
    prog = make_program(
        [
            Loop(
                10,
                [
                    ThreadCall(ThreadOp.MUTEX_LOCK, lock="m"),
                    ring_send(),
                    ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="m"),
                    ring_recv(),  # after unlock: not flagged
                ],
            )
        ]
    )
    diags = codes_of(prog, "PF004")
    assert len(diags) == 1
    assert "'m'" in diags[0].message


def test_pf004_ignores_single_threaded_and_unlooped_allocs():
    prog = make_program(
        [
            Loop(100, [ThreadCall(ThreadOp.ALLOC, hold=1e-6)]),  # no threads
            ThreadCall(
                ThreadOp.CREATE,
                count=1,  # one thread: no contention
                body=[Loop(100, [ThreadCall(ThreadOp.ALLOC, hold=1e-6)])],
            ),
            ThreadCall(
                ThreadOp.CREATE,
                count=4,
                body=[ThreadCall(ThreadOp.DEALLOC, hold=1e-6)],  # not in a loop
            ),
        ]
    )
    assert codes_of(prog, "PF004") == []


# ---------------------------------------------------------------------------
# PF005 — unresolved indirect call in a hot loop
# ---------------------------------------------------------------------------
def test_pf005_flags_indirect_call_in_loop():
    prog = make_program(
        [Loop(8, [Call("kernel", target=CallTarget.INDIRECT, cost=0.1, line=42)])]
    )
    diags = codes_of(prog, "PF005")
    assert len(diags) == 1
    assert "indirect call" in diags[0].message


def test_pf005_ignores_resolved_or_cold_calls():
    helper = Function("helper", [Stmt("w", 0.1)])
    prog = make_program(
        [
            Loop(8, [Call("helper")]),  # resolved USER call
            Call("setup", target=CallTarget.INDIRECT),  # indirect, but cold
        ],
        extra=[helper],
    )
    assert codes_of(prog, "PF005") == []


# ---------------------------------------------------------------------------
# PF006 — rank-/thread-divergent cost
# ---------------------------------------------------------------------------
def test_pf006_flags_rank_imbalance():
    prog = make_program(
        [Loop(10, [Stmt("work", cost=lambda c: 2.0 if c.rank % 2 == 0 else 1.0, line=3)])]
    )
    diags = codes_of(prog, "PF006")
    assert len(diags) == 1
    assert "across ranks" in diags[0].message


def test_pf006_flags_thread_imbalance():
    prog = make_program(
        [
            ThreadCall(
                ThreadOp.CREATE,
                count=4,
                body=[Loop(10, [Stmt("tw", cost=lambda c: 1.0 + c.thread)])],
            )
        ]
    )
    diags = codes_of(prog, "PF006")
    assert len(diags) == 1
    assert "across threads" in diags[0].message


def test_pf006_tolerates_jitter_and_cold_code():
    prog = make_program(
        [
            Loop(10, [Stmt("even", cost=lambda c: 1.0 + 0.02 * (c.rank % 2))]),  # 2% jitter
            Stmt("init", cost=lambda c: 2.0 if c.rank == 0 else 1.0),  # skewed but cold
        ]
    )
    assert codes_of(prog, "PF006") == []


def test_pf006_threshold_is_configurable():
    prog = make_program([Loop(10, [Stmt("w", cost=lambda c: 1.0 + 0.05 * (c.rank % 2))])])
    assert codes_of(prog, "PF006") == []  # 5% < default 10%
    assert len(codes_of(prog, "PF006", cost_spread_threshold=0.03)) == 1


# ---------------------------------------------------------------------------
# PF007 — extracted PAG violates structural invariants
# ---------------------------------------------------------------------------
def test_pf007_flags_broken_pag():
    prog = make_program([Stmt("w", 1.0)])
    ctx = LintContext(prog)
    bad = PAG("toy/top-down")
    bad.add_vertex(VertexLabel.FUNCTION, "main")  # no debug-info property
    ctx._static_result = SimpleNamespace(pag=bad)
    diags = [get_rule("PF007").to_diagnostic(f) for f in get_rule("PF007").check(ctx)]
    assert diags
    assert "debug info" in diags[0].message


def test_pf007_clean_on_extracted_pag():
    prog = make_program([Loop(4, [Stmt("w", 1.0, line=2)], line=1)])
    assert codes_of(prog, "PF007") == []


# ---------------------------------------------------------------------------
# registry behaviour & custom rules
# ---------------------------------------------------------------------------
def test_custom_rule_registration_roundtrip():
    @rule("PF901", name="no-main", severity=Severity.INFO, description="demo")
    def no_main(ctx):
        if "main" in ctx.program.functions:
            yield Finding(message="program has a main")

    try:
        report = lint_program(make_program([Stmt("w", 1.0)]), codes=["PF901"])
        assert report.codes == ["PF901"]
        assert report.diagnostics[0].severity is Severity.INFO
    finally:
        unregister("PF901")


def _make_rule(code):
    from repro.lint.registry import Rule

    return Rule(code=code, name="x", severity=Severity.INFO, description="", check=lambda ctx: ())


def test_register_rejects_bad_and_duplicate_codes():
    with pytest.raises(ValueError, match="does not match"):
        register(_make_rule("XX1"))
    with pytest.raises(ValueError, match="duplicate rule code"):
        register(_make_rule("PF001"))


def test_finding_severity_overrides_rule_default():
    r = get_rule("PF001")
    diag = r.to_diagnostic(Finding(message="m", severity=Severity.ERROR))
    assert diag.severity is Severity.ERROR


# ---------------------------------------------------------------------------
# golden JSON output
# ---------------------------------------------------------------------------
def test_json_report_golden():
    prog = make_program(
        [Loop(10, [Stmt("work", cost=lambda c: 3.0 if c.rank == 0 else 1.0, line=12)],
              name="iter", line=11)],
        name="golden",
    )
    payload = json.loads(lint_program(prog, codes=["PF006"]).to_json())
    assert payload == {
        "subject": "golden",
        "diagnostics": [
            {
                "code": "PF006",
                "severity": "warning",
                "message": (
                    "cost of 'work' diverges across ranks (spread 178% of "
                    "mean, jitter floor 10%): statically visible load imbalance"
                ),
                "file": "main.c",
                "line": 12,
                "function": "main",
                "node": "work",
                "location": "main.c:12",
            }
        ],
        "summary": {"info": 1, "warning": 1, "error": 0},
    }

"""``repro serve`` as a real subprocess: startup, requests, SIGTERM drain.

Drives the server exactly the way an operator does — ``python -m repro
serve`` — and checks the lifecycle guarantees the docs promise: the
bound address is announced on stdout, requests work over real sockets,
SIGTERM drains gracefully to exit code 0, and the process backend
leaves no shared-memory segments behind.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.dataflow.api import PerFlow
from repro.pag.formats import save_pag
from repro.serve.client import analyze, http_request, wait_ready
from tests.conftest import make_ring_program

_ANNOUNCE = re.compile(r"serving on ([\d.]+):(\d+)")


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn(tmp_path, *extra: str) -> "subprocess.Popen[str]":
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--ledger-dir",
            str(tmp_path / "ledger"),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_env(),
        text=True,
        cwd=str(tmp_path),
    )


def _await_announce(proc) -> "tuple[str, int]":
    deadline = time.monotonic() + 20.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                break
            time.sleep(0.02)
            continue
        m = _ANNOUNCE.search(line)
        if m:
            return m.group(1), int(m.group(2))
    raise AssertionError(
        f"no announce line (last={line!r}, rc={proc.poll()}, "
        f"stderr={proc.stderr.read()[-2000:]})"
    )


def _terminate(proc, timeout: float = 20.0) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise


@pytest.fixture(scope="module")
def pag_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-cli-pag")
    pag = PerFlow().run(bin=make_ring_program(), nprocs=4)
    path = root / "ring.pag"
    save_pag(pag, path, format=3)
    return path


def test_serve_subprocess_sigterm_drains_cleanly(tmp_path, pag_file):
    proc = _spawn(tmp_path)
    try:
        host, port = _await_announce(proc)
        wait_ready(host, port)

        status, _headers, body = http_request(host, port, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

        status, events = analyze(
            host,
            port,
            {"pipeline": "hotspot", "pag_path": str(pag_file)},
        )
        assert status == 200
        kinds = [e["event"] for e in events]
        assert kinds == ["accepted", "started", "result"]
        assert events[-1]["result"], "hotspot pipeline returned no rows"

        rc = _terminate(proc)
        assert rc == 0, f"SIGTERM drain exited {rc}: {proc.stderr.read()[-2000:]}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_serve_process_backend_leaks_no_shm(tmp_path, pag_file):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    before = set(os.listdir("/dev/shm"))
    proc = _spawn(tmp_path, "--backend", "process", "--jobs", "2")
    try:
        host, port = _await_announce(proc)
        wait_ready(host, port)
        status, events = analyze(
            host,
            port,
            {"pipeline": "mpi_profiler", "pag_path": str(pag_file)},
        )
        assert status == 200
        assert events[-1]["event"] == "result"
        rc = _terminate(proc)
        assert rc == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # Same idiom as tests/test_procpool_faults.py: the drain must return
    # every shared-memory segment the process pool created.
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def test_serve_rejects_bad_flags(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--max-concurrent", "0"],
        capture_output=True,
        env=_env(),
        text=True,
        timeout=60,
    )
    assert proc.returncode == 2
    assert "max-concurrent" in proc.stderr

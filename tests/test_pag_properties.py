"""Property-based tests (hypothesis) on the set algebra and graph core."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.pag.vertex import VertexLabel


def _universe(n=12):
    g = PAG("prop")
    for i in range(n):
        g.add_vertex(VertexLabel.INSTRUCTION, f"v{i}", properties={"time": float(i % 5)})
    return g


UNIVERSE = _universe()
indices = st.lists(st.integers(min_value=0, max_value=11), max_size=20)


def vs(ids):
    return VertexSet(UNIVERSE.vertex(i) for i in ids)


@given(indices, indices)
def test_union_commutative_as_sets(a, b):
    assert vs(a).union(vs(b)) == vs(b).union(vs(a))


@given(indices, indices, indices)
def test_union_associative(a, b, c):
    assert vs(a).union(vs(b)).union(vs(c)) == vs(a).union(vs(b).union(vs(c)))


@given(indices)
def test_union_idempotent(a):
    assert vs(a).union(vs(a)) == vs(a)


@given(indices, indices)
def test_intersection_subset_of_both(a, b):
    inter = vs(a).intersection(vs(b))
    for v in inter:
        assert v in vs(a)
        assert v in vs(b)


@given(indices, indices)
def test_difference_disjoint_from_subtrahend(a, b):
    diff = vs(a).difference(vs(b))
    for v in diff:
        assert v not in vs(b)
    assert diff.union(vs(a).intersection(vs(b))) == vs(a)


@given(indices, indices)
def test_demorgan(a, b):
    universe = UNIVERSE.vs
    lhs = vs(a).union(vs(b)).complement(universe)
    rhs = vs(a).complement(universe).intersection(vs(b).complement(universe))
    assert lhs == rhs


@given(indices)
def test_sort_preserves_membership(a):
    s = vs(a)
    assert s.sort_by("time") == s
    assert len(s.sort_by("time")) == len(s)


@given(indices, st.integers(min_value=0, max_value=25))
def test_top_is_prefix(a, n):
    s = vs(a).sort_by("time")
    top = s.top(n)
    assert len(top) == min(n, len(s))
    for i, v in enumerate(top):
        assert v.id == s[i].id


@given(indices)
def test_sort_descending_by_metric(a):
    times = [v["time"] for v in vs(a).sort_by("time")]
    assert times == sorted(times, reverse=True)


@given(indices)
def test_dedup_no_duplicates(a):
    s = vs(a)
    ids = [v.id for v in s]
    assert len(ids) == len(set(ids))


@settings(max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
def test_graph_degree_sums_match_edge_count(edges):
    g = PAG()
    for i in range(10):
        g.add_vertex(VertexLabel.INSTRUCTION, f"n{i}")
    for src, dst in edges:
        g.add_edge(src, dst, EdgeLabel.INTRA_PROCEDURAL)
    assert sum(g.out_degree(v) for v in range(10)) == len(edges)
    assert sum(g.in_degree(v) for v in range(10)) == len(edges)
    sub, remap = g.subgraph(range(5))
    # induced subgraph keeps exactly the edges with both endpoints kept
    expected = sum(1 for s, d in edges if s < 5 and d < 5)
    assert sub.num_edges == expected

"""Property-based serialize round-trip suite (hypothesis).

Random PAGs — unicode names, spilled object columns, per-rank vectors,
empty graphs — must survive both on-disk formats losslessly, and
``PAG.fingerprint()`` (the identity the result cache is addressed by)
must be exactly preserved by save/load: a cached result keyed against a
graph must still be addressable after that graph takes a trip through
the filesystem.
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cache.fingerprint import fingerprint_pag
from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.serialize import (
    PAGFormatError,
    load_pag,
    pag_from_dict,
    pag_to_dict,
    save_pag,
)
from repro.pag.vertex import CallKind, VertexLabel

# Names mix ASCII, unicode (CJK, accents, symbols), and awkward JSON
# characters; floats stay in a range where the 9-decimal rounding of
# both writers is exact enough to compare by fingerprint.
names = st.text(
    alphabet=st.sampled_from("abcXYZ_0189 éüΩ中文🌍\"\\\n"), min_size=1, max_size=12
)
floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def pags(draw) -> PAG:
    pag = PAG(draw(names))
    nv = draw(st.integers(min_value=0, max_value=8))
    for i in range(nv):
        props = {}
        if draw(st.booleans()):
            props["time"] = draw(floats)
        if draw(st.booleans()):
            props["count"] = draw(st.integers(min_value=-(2**40), max_value=2**40))
        if draw(st.booleans()):
            props["debug-info"] = draw(names)
        if draw(st.booleans()):
            # per-rank vector -> spilled object column
            props["time_per_rank"] = np.asarray(
                draw(st.lists(floats, min_size=1, max_size=4)), dtype=float
            )
        if draw(st.booleans()):
            props["comm-info"] = {"bytes": draw(floats), "peer": draw(names)}
        label = draw(st.sampled_from(list(VertexLabel)))
        call_kind = (
            draw(st.sampled_from([None, CallKind.USER, CallKind.COMM, CallKind.INDIRECT]))
            if label is VertexLabel.CALL
            else None
        )
        pag.add_vertex(label, draw(names), call_kind, props)
    if nv >= 2:
        for _ in range(draw(st.integers(min_value=0, max_value=10))):
            src = draw(st.integers(min_value=0, max_value=nv - 1))
            dst = draw(st.integers(min_value=0, max_value=nv - 1))
            eprops = {}
            if draw(st.booleans()):
                eprops["weight"] = draw(floats)
            elabel = draw(st.sampled_from(list(EdgeLabel)))
            comm_kind = (
                draw(st.sampled_from([None, CommKind.P2P_SYNC, CommKind.COLLECTIVE]))
                if elabel is EdgeLabel.INTER_PROCESS
                else None
            )
            pag.add_edge(src, dst, elabel, comm_kind, eprops)
    if draw(st.booleans()):
        pag.metadata["nprocs"] = draw(st.integers(min_value=1, max_value=64))
    if draw(st.booleans()):
        pag.metadata["case"] = draw(names)
    return pag


_settings = settings(
    max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


def _assert_equivalent(a: PAG, b: PAG) -> None:
    assert b.name == a.name
    assert b.num_vertices == a.num_vertices
    assert b.num_edges == a.num_edges
    assert b.fingerprint() == a.fingerprint()


@_settings
@given(pags())
def test_format2_file_roundtrip_preserves_fingerprint(tmp_path, pag):
    path = tmp_path / "pag.json"
    save_pag(pag, path, include_per_rank=True)
    _assert_equivalent(pag, load_pag(path))


@_settings
@given(pags())
def test_format1_dict_roundtrip_preserves_fingerprint(pag):
    # through an actual JSON text round-trip, like a file would
    data = json.loads(json.dumps(pag_to_dict(pag, include_per_rank=True)))
    _assert_equivalent(pag, pag_from_dict(data))


@_settings
@given(pags())
def test_formats_agree_on_fingerprint(tmp_path, pag):
    """Format 1 and format 2 reload to the same fingerprint — both
    writers canonicalize floats identically (np.round to 9 places)."""
    path = tmp_path / "pag2.json"
    save_pag(pag, path, include_per_rank=True)
    via2 = load_pag(path)
    via1 = pag_from_dict(json.loads(json.dumps(pag_to_dict(pag, include_per_rank=True))))
    assert via1.fingerprint() == via2.fingerprint() == pag.fingerprint()


@_settings
@given(pags())
def test_properties_survive_roundtrip(tmp_path, pag):
    path = tmp_path / "pag3.json"
    save_pag(pag, path, include_per_rank=True)
    back = load_pag(path)
    for v, w in zip(pag.vertices(), back.vertices()):
        assert w.name == v.name
        assert w.label == v.label
        for key in ("time", "count", "debug-info"):
            a, b = v[key], w[key]
            if isinstance(a, float):
                assert b == pytest.approx(a, abs=1e-8)
            else:
                assert b == a
        pr_a, pr_b = v["time_per_rank"], w["time_per_rank"]
        if isinstance(pr_a, np.ndarray):
            np.testing.assert_allclose(pr_b, pr_a, atol=1e-8)
        else:
            assert pr_b is None or pr_b == pr_a


@_settings
@given(pags(), st.booleans())
def test_format3_roundtrip_preserves_fingerprint(tmp_path, pag, mmap):
    """Binary format 3 round-trips losslessly, eager and mmap-ed alike.

    The loaded fingerprint is checked twice: once through the
    header-seeded cache (``PAG.fingerprint``) and once force-recomputed
    from the actual column data (``fingerprint_pag``) — so a writer that
    stamped a wrong digest into the header cannot hide behind the seed.
    """
    path = tmp_path / "pag.pag3"
    save_pag(pag, path, include_per_rank=True, format=3)
    back = load_pag(path, mmap=mmap)
    _assert_equivalent(pag, back)
    assert fingerprint_pag(back) == pag.fingerprint()


@_settings
@given(pags())
def test_format2_and_format3_load_identical_pags(tmp_path, pag):
    p2, p3 = tmp_path / "a.json", tmp_path / "a.pag3"
    save_pag(pag, p2, include_per_rank=True, format=2)
    save_pag(pag, p3, include_per_rank=True, format=3)
    via2, via3 = load_pag(p2), load_pag(p3)
    assert fingerprint_pag(via3) == fingerprint_pag(via2) == pag.fingerprint()
    for v2, v3 in zip(via2.vertices(), via3.vertices()):
        assert v3.name == v2.name
        assert v3.label == v2.label
        assert dict(v3.properties).keys() == dict(v2.properties).keys()


@_settings
@given(pags())
def test_mmap_mutation_promotes_without_corrupting_source(tmp_path, pag):
    """Mutating an mmap-loaded PAG copies on write: the graph changes,
    the backing file does not."""
    path = tmp_path / "cow.pag3"
    save_pag(pag, path, include_per_rank=True, format=3)
    raw = path.read_bytes()
    g = load_pag(path, mmap=True)
    g.add_vertex(VertexLabel.FUNCTION, "intruder", None, {"time": 1.0})
    if pag.num_vertices:
        g.vertex(0)["time"] = 123.456
        g.vertex(0).name = "renamed"
    assert g.num_vertices == pag.num_vertices + 1
    assert path.read_bytes() == raw
    # and a fresh load still reproduces the original
    _assert_equivalent(pag, load_pag(path, mmap=True))


def test_empty_pag_roundtrip(tmp_path):
    pag = PAG("empty")
    path = tmp_path / "e.json"
    save_pag(pag, path)
    back = load_pag(path)
    _assert_equivalent(pag, back)
    _assert_equivalent(pag, pag_from_dict(pag_to_dict(pag)))
    path3 = tmp_path / "e.pag3"
    save_pag(pag, path3, format=3)
    for mmap in (False, True):
        _assert_equivalent(pag, load_pag(path3, mmap=mmap))


@_settings
@given(st.text(max_size=40))
def test_arbitrary_text_never_tracebacks(tmp_path, text):
    """load_pag on arbitrary file contents either parses or raises the
    typed PAGFormatError — never a raw JSONDecodeError/KeyError."""
    path = tmp_path / "junk.json"
    path.write_text(text, "utf-8")
    try:
        load_pag(path)
    except PAGFormatError as exc:
        assert str(path) in str(exc)


@pytest.mark.parametrize("payload", [
    "",
    "[1, 2, 3]",
    '{"format": 2}',
    '{"format": 2, "name": "x", "strings": [], "v": {}, "e": {}}',
    '{"name": "x", "vertices": [[999, "v", null, {}]], "edges": []}',
    '{"name": "x", "vertices": [["bad-shape"]], "edges": []}',
])
def test_corrupt_documents_raise_pag_format_error(tmp_path, payload):
    path = tmp_path / "bad.json"
    path.write_text(payload, "utf-8")
    with pytest.raises(PAGFormatError):
        load_pag(path)


def _saved_format3(tmp_path) -> bytes:
    pag = PAG("corruptee", {"nprocs": 2})
    v0 = pag.add_vertex(VertexLabel.FUNCTION, "main", None, {"time": 1.0})
    v1 = pag.add_vertex(VertexLabel.LOOP, "loop", None, {"count": 3})
    pag.add_edge(v0, v1, EdgeLabel.INTRA_PROCEDURAL)
    path = tmp_path / "ok.pag3"
    save_pag(pag, path, format=3)
    return path.read_bytes()


@pytest.mark.parametrize("mmap", [False, True])
@pytest.mark.parametrize(
    "corrupt",
    [
        pytest.param(lambda raw: raw[:40], id="truncated-header"),
        pytest.param(lambda raw: raw[:150], id="truncated-directory"),
        pytest.param(
            lambda raw: b"PAG3" + b"\xff" * (len(raw) - 4), id="garbage-after-magic"
        ),
        pytest.param(
            lambda raw: raw[:4] + (99).to_bytes(2, "little") + raw[6:],
            id="unsupported-version",
        ),
        pytest.param(lambda raw: raw[: len(raw) // 2], id="truncated-data"),
        pytest.param(
            lambda raw: raw.replace(b'"v_name":[128,', b'"v_name":[129,', 1),
            id="misaligned-segment",
        ),
        pytest.param(
            lambda raw: raw[:32] + b"zz" + raw[34:], id="non-hex-fingerprint"
        ),
    ],
)
def test_corrupt_format3_raises_pag_format_error(tmp_path, corrupt, mmap):
    raw = _saved_format3(tmp_path)
    mutated = corrupt(raw)
    assert mutated != raw, "corruption did not change the file"
    path = tmp_path / "bad.pag3"
    path.write_bytes(mutated)
    with pytest.raises(PAGFormatError) as exc:
        load_pag(path, mmap=mmap)
    assert str(path) in str(exc.value)

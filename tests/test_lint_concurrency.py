"""End-to-end tests for the concurrency lint tier (PF101–PF104) and its
delivery layers: SARIF export, baseline/suppression files, and the
fingerprint-cached incremental runner.

The injected-bug demo app ``deadlock_ring`` carries one instance of each
defect class (ring deadlock, lock-order inversion, data race) plus one
correctly-synchronized pattern; these tests pin both the detections and
the non-detections, statically and against a recorded run trace.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.apps import deadlock_ring, lammps, microbench, registry
from repro.ir.model import (
    Branch,
    CommCall,
    CommOp,
    Function,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.lint import LintConfig, LintReport, Severity, lint_program
from repro.lint.baseline import (
    Baseline,
    SuppressRule,
    _parse_toml_subset,
    finding_fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.concurrency import find_races
from repro.lint.sarif import sarif_json, to_sarif
from repro.runtime.executor import run_program
from repro.runtime.records import RunTrace, load_run_trace, run_trace, save_run_trace

PF1XX = ["PF101", "PF102", "PF103", "PF104"]


@pytest.fixture(scope="module")
def ring_program():
    return deadlock_ring.build()


@pytest.fixture(scope="module")
def ring_trace(ring_program):
    result = run_program(
        ring_program, nprocs=4, nthreads=2, on_deadlock="record"
    )
    return run_trace(result)


@pytest.fixture(scope="module")
def static_report(ring_program):
    return lint_program(ring_program, codes=PF1XX)


@pytest.fixture(scope="module")
def confirmed_report(ring_program, ring_trace):
    return lint_program(ring_program, codes=PF1XX, trace=ring_trace)


# ---------------------------------------------------------------------------
# static tier on the demo app
# ---------------------------------------------------------------------------
def test_static_pf101_reports_ring_cycle_with_evidence(static_report):
    diags = static_report.by_code("PF101")
    assert len(diags) == 1
    d = diags[0]
    assert d.severity is Severity.ERROR
    assert d.status == ""  # purely static: no confirmation claim
    assert d.file == "ring.c" and d.line == 50
    # Evidence path: at least the first hops of the cycle, file:line each.
    assert "rank 0 blocked in blocking MPI_Send to rank 1 at ring.c:50" in d.message
    assert "rank 1 blocked in blocking MPI_Send to rank 2 at ring.c:50" in d.message
    assert "->" in d.message


def test_static_pf103_reports_inversion_across_functions(static_report):
    diags = static_report.by_code("PF103")
    assert len(diags) == 1
    d = diags[0]
    assert d.severity is Severity.WARNING
    assert "'order_a'" in d.message and "'order_b'" in d.message
    # Both sides of the inversion are cited with their source locations.
    assert "ring.c:62" in d.message and "ring.c:72" in d.message


def test_static_tier_stays_silent_where_it_should(static_report):
    assert static_report.by_code("PF102") == []
    assert static_report.by_code("PF104") == []  # races need a trace


# ---------------------------------------------------------------------------
# dynamic confirmation against the recorded trace
# ---------------------------------------------------------------------------
def test_trace_records_the_deadlock(ring_trace):
    assert ring_trace.deadlocked
    assert ring_trace.program == "deadlock_ring"
    assert ring_trace.sync_events and ring_trace.access_events


def test_trace_confirms_pf101(confirmed_report):
    (d,) = confirmed_report.by_code("PF101")
    assert d.status == "confirmed"
    assert d.severity is Severity.ERROR
    assert "(confirmed)" in d.format()


def test_trace_confirms_pf103_and_upgrades_severity(confirmed_report):
    (d,) = confirmed_report.by_code("PF103")
    assert d.status == "confirmed"
    assert d.severity is Severity.ERROR  # warning -> error once observed


def test_trace_flags_pf104_race_but_not_benign_pattern(confirmed_report):
    diags = confirmed_report.by_code("PF104")
    assert len(diags) == 1
    d = diags[0]
    assert "'ring_counter'" in d.message
    assert d.status == "confirmed"
    # hist is only touched under hist_lock / after the join: no finding.
    assert not any("hist" in x.message for x in diags)


def test_nondeadlocking_trace_demotes_pf101_to_unobserved(ring_program):
    empty = RunTrace(program="deadlock_ring", nprocs=4, nthreads=2)
    report = lint_program(ring_program, codes=PF1XX, trace=empty)
    (d,) = report.by_code("PF101")
    assert d.status == "unobserved"
    assert d.severity is Severity.INFO
    (d3,) = report.by_code("PF103")
    assert d3.status == "unobserved"
    assert d3.severity is Severity.INFO


def test_trace_roundtrip_preserves_confirmation(tmp_path, ring_program, ring_trace):
    path = tmp_path / "ring.json"
    save_run_trace(ring_trace, str(path))
    loaded = load_run_trace(str(path))
    report = lint_program(ring_program, codes=PF1XX, trace=loaded)
    assert {d.code: d.status for d in report} == {
        "PF101": "confirmed", "PF103": "confirmed", "PF104": "confirmed"
    }


# ---------------------------------------------------------------------------
# PF102 — orphaned communication (synthetic cases)
# ---------------------------------------------------------------------------
def test_pf102_flags_recv_nobody_will_ever_send():
    # rank 0 posts two receives from rank 1; rank 1 sends exactly once and
    # finishes — the second receive waits on a peer that has terminated.
    prog = Program(name="orphan", entry="main")
    prog.add_function(Function("main", [
        Branch(
            lambda c: c.rank == 0,
            then_body=[
                CommCall(CommOp.RECV, peer=1, tag=4, name="MPI_Recv", line=11),
                CommCall(CommOp.RECV, peer=1, tag=4, name="MPI_Recv", line=12),
            ],
            else_body=[
                CommCall(CommOp.SEND, peer=0, nbytes=1 << 20, tag=4,
                         name="MPI_Send", line=21),
            ],
            name="role", line=10,
        ),
    ], source_file="orphan.c", line=1))
    report = lint_program(prog, LintConfig(nprocs=2), codes=["PF102"])
    (d,) = report.by_code("PF102")
    assert d.severity is Severity.ERROR
    assert "rank 0" in d.message


def test_pf102_flags_collective_op_mismatch():
    prog = Program(name="mismatch", entry="main")
    prog.add_function(Function("main", [
        Branch(
            lambda c: c.rank == 0,
            then_body=[CommCall(CommOp.REDUCE, root=0, name="MPI_Reduce", line=11)],
            else_body=[CommCall(CommOp.BARRIER, name="MPI_Barrier", line=13)],
            name="which", line=10,
        ),
    ], source_file="mm.c", line=1))
    report = lint_program(prog, LintConfig(nprocs=2), codes=["PF102"])
    assert report.by_code("PF102")


def test_pf1xx_clean_on_evaluated_apps():
    # The three apps ISSUE names plus the demo's own clean sibling class.
    for prog in (registry("S")["cg"](), lammps.build(), microbench.build()):
        report = lint_program(prog, codes=PF1XX)
        assert list(report) == [], f"{prog.name}: {report.to_text()}"


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------
def test_sarif_shape(confirmed_report):
    log = to_sarif(confirmed_report)
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert set(rule_ids) == {"PF101", "PF103", "PF104"}
    for r in driver["rules"]:
        assert r["defaultConfiguration"]["level"] in ("error", "warning", "note")
    assert run["columnKind"] == "utf16CodeUnits"
    for res in run["results"]:
        assert res["level"] == "error"
        assert res["ruleId"] in rule_ids
        assert driver["rules"][res["ruleIndex"]]["id"] == res["ruleId"]
        assert res["message"]["text"]
        assert "perflowFingerprint/v1" in res["partialFingerprints"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "ring.c"
        assert loc["region"]["startLine"] > 0
        assert res["properties"]["status"] == "confirmed"
        assert "suppressions" not in res


def test_sarif_marks_suppressed_findings_external(static_report):
    hidden = list(static_report)
    log = to_sarif(LintReport(subject="deadlock_ring"), suppressed=hidden)
    results = log["runs"][0]["results"]
    assert len(results) == len(hidden)
    assert all(r["suppressions"] == [{"kind": "external"}] for r in results)


def test_sarif_json_is_valid_json(static_report):
    parsed = json.loads(sarif_json(static_report))
    assert parsed["runs"][0]["properties"]["subject"] == "deadlock_ring"


# ---------------------------------------------------------------------------
# baseline / suppression files
# ---------------------------------------------------------------------------
def test_fingerprint_ignores_line_numbers(static_report):
    (d,) = static_report.by_code("PF101")
    moved = type(d)(
        code=d.code, severity=d.severity, message=d.message, file=d.file,
        line=d.line + 7, function=d.function, node=d.node,
    )
    assert finding_fingerprint(d) == finding_fingerprint(moved)
    other = type(d)(
        code=d.code, severity=d.severity, message="different", file=d.file,
        line=d.line, function=d.function, node=d.node,
    )
    assert finding_fingerprint(d) != finding_fingerprint(other)


def test_baseline_roundtrip_add_then_expire(tmp_path, static_report):
    path = tmp_path / ".perflowlint.toml"
    diags = list(static_report)
    added, expired = write_baseline(str(path), diags)
    assert (added, expired) == (len(diags), 0)
    base = load_baseline(str(path))
    assert len(base.fingerprints) == len(diags)
    part = partition(diags, base)
    assert part.active == [] and len(part.baselined) == len(diags)
    # One finding fixed: rewriting expires exactly its fingerprint.
    added2, expired2 = write_baseline(str(path), diags[:-1], previous=base)
    assert (added2, expired2) == (0, 1)
    base2 = load_baseline(str(path))
    assert len(base2.fingerprints) == len(diags) - 1
    part2 = partition(diags, base2)
    assert len(part2.active) == 1  # the no-longer-baselined one fails again


def test_suppress_rules_match_code_and_path_glob(static_report):
    diags = list(static_report)
    base = Baseline(suppress=[SuppressRule(code="PF101", path="ring.*")])
    part = partition(diags, base)
    assert [d.code for d in part.suppressed] == ["PF101"]
    assert "PF101" not in [d.code for d in part.active]
    # Non-matching glob suppresses nothing.
    none = partition(diags, Baseline(suppress=[SuppressRule("PF101", "other.c")]))
    assert none.suppressed == []


def test_write_baseline_preserves_suppress_entries(tmp_path, static_report):
    path = tmp_path / "bl.toml"
    prev = Baseline(suppress=[SuppressRule(code="PF103", path="ring.*")])
    write_baseline(str(path), list(static_report), previous=prev)
    base = load_baseline(str(path))
    assert base.suppress == [SuppressRule(code="PF103", path="ring.*")]
    # Suppressed findings are not double-pinned as baseline entries.
    assert all(m["code"] != "PF103" for m in base.fingerprints.values())


def test_toml_subset_parser_agrees_with_writer(tmp_path, static_report):
    path = tmp_path / "bl.toml"
    prev = Baseline(suppress=[SuppressRule(code="PF001", path='glob"quoted"*')])
    write_baseline(str(path), list(static_report), previous=prev)
    text = path.read_text(encoding="utf-8")
    parsed = _parse_toml_subset(text)
    tomllib = pytest.importorskip("tomllib")
    assert parsed == tomllib.loads(text)


def test_malformed_baseline_raises_value_error(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text("[[suppress]]\npath = \"x\"\n")  # missing required code
    with pytest.raises(ValueError):
        load_baseline(str(path))
    path.write_text("not toml at all ][\n")
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ---------------------------------------------------------------------------
# hypothesis: the happens-before checker on correctly-synchronized programs
# ---------------------------------------------------------------------------
_VARS = ("x", "y", "z")


@settings(max_examples=20, deadline=None)
@given(
    workers=st.integers(min_value=2, max_value=4),
    segments=st.lists(
        st.tuples(st.sampled_from(_VARS), st.sampled_from(["r", "w"])),
        min_size=1,
        max_size=4,
    ),
    nprocs=st.integers(min_value=1, max_value=2),
)
def test_hb_checker_never_flags_synchronized_program(workers, segments, nprocs):
    """Every shared access inside the spawned threads happens under one
    global lock, and the main thread touches shared state only before
    the spawn / after the join — by construction race-free, so the
    vector-clock checker must stay silent for any such program."""
    body = []
    for i, (var, mode) in enumerate(segments):
        body += [
            ThreadCall(ThreadOp.MUTEX_LOCK, lock="g", hold=0.001,
                       name="pthread_mutex_lock", line=20 + 3 * i),
            Stmt(f"seg{i}", cost=0.001, touches=((var, mode),), line=21 + 3 * i),
            ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="g",
                       name="pthread_mutex_unlock", line=22 + 3 * i),
        ]
    prog = Program(name="sync_demo", entry="main")
    prog.add_function(Function("main", [
        Stmt("pre", cost=0.001, touches=(("x", "w"), ("y", "w")), line=5),
        ThreadCall(ThreadOp.CREATE, count=workers, body=body,
                   name="pthread_create", line=10),
        ThreadCall(ThreadOp.JOIN, name="pthread_join", line=40),
        Stmt("post", cost=0.001, touches=(("x", "r"), ("z", "r")), line=41),
    ], source_file="sync.c", line=1))
    trace = run_trace(run_program(prog, nprocs=nprocs, nthreads=workers))
    assert find_races(trace) == []


# ---------------------------------------------------------------------------
# CLI: record -> confirm -> baseline -> SARIF
# ---------------------------------------------------------------------------
def test_cli_record_trace_then_confirm(tmp_path, capsys):
    from repro.cli import EXIT_ISSUES, main

    trace_path = tmp_path / "ring.json"
    assert main([
        "run", "deadlock_ring", "--np", "4", "--threads", "2",
        "--record-trace", str(trace_path),
    ]) == EXIT_ISSUES
    out = capsys.readouterr().out
    assert "DEADLOCK" in out and str(trace_path) in out
    assert main([
        "lint", "deadlock_ring", "--trace", str(trace_path),
    ]) == EXIT_ISSUES
    out = capsys.readouterr().out
    assert "(confirmed)" in out and "PF104" in out


def test_cli_sarif_output_parses(capsys):
    from repro.cli import EXIT_ISSUES, main

    assert main(["lint", "deadlock_ring", "--format", "sarif"]) == EXIT_ISSUES
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"


def test_cli_rejects_unknown_format(capsys):
    from repro.cli import EXIT_USAGE, main

    with pytest.raises(SystemExit) as exc:
        main(["lint", "deadlock_ring", "--format", "yaml"])
    assert exc.value.code == EXIT_USAGE
    with pytest.raises(SystemExit) as exc:
        main(["lint", "deadlock_ring", "--json", "--format", "sarif"])
    assert exc.value.code == EXIT_USAGE


def test_cli_baseline_hides_known_findings(tmp_path, capsys):
    from repro.cli import EXIT_OK, main

    bl = tmp_path / ".perflowlint.toml"
    assert main([
        "lint", "deadlock_ring", "--baseline", str(bl), "--write-baseline",
    ]) == EXIT_OK
    assert main(["lint", "deadlock_ring", "--baseline", str(bl)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "no issues found" in out and "hidden" in out


def test_hb_checker_flags_the_unsynchronized_variant():
    prog = Program(name="racy", entry="main")
    prog.add_function(Function("main", [
        ThreadCall(ThreadOp.CREATE, count=2, body=[
            Stmt("bump", cost=0.001, touches=(("c", "w"),), line=21),
        ], name="pthread_create", line=20),
        ThreadCall(ThreadOp.JOIN, name="pthread_join", line=30),
    ], source_file="racy.c", line=1))
    trace = run_trace(run_program(prog, nprocs=1, nthreads=2))
    races = find_races(trace)
    assert [r.var for r in races] == ["c"]

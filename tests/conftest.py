"""Shared fixtures: small program models exercising every IR feature."""

from __future__ import annotations

import pytest

from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)


def make_ring_program(iterations: int = 3, imbalanced_rank: int = -1) -> Program:
    """MPI ring: compute + isend/irecv/waitall + allreduce per iteration.

    ``imbalanced_rank`` (if >= 0) does 3x the work, creating wait states
    downstream.
    """
    p = Program(name="ring", code_kloc=0.5)
    p.add_function(
        Function(
            "work",
            [
                Stmt(
                    "compute",
                    cost=lambda ctx: 0.01 * (3.0 if ctx.rank == imbalanced_rank else 1.0),
                    line=11,
                )
            ],
            source_file="ring.c",
            line=10,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(
                    trips=iterations,
                    name="loop_1",
                    line=20,
                    body=[
                        Call("work", line=21),
                        CommCall(
                            CommOp.ISEND,
                            peer=lambda c: (c.rank + 1) % c.nprocs,
                            nbytes=1024,
                            req="s",
                            line=22,
                        ),
                        CommCall(
                            CommOp.IRECV,
                            peer=lambda c: (c.rank - 1) % c.nprocs,
                            nbytes=1024,
                            req="r",
                            line=23,
                        ),
                        CommCall(CommOp.WAITALL, name="MPI_Waitall", line=24),
                        CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=25),
                    ],
                ),
            ],
            source_file="ring.c",
            line=19,
        )
    )
    return p


def make_threaded_program(nthreads_default: int = 4, allocs: int = 5) -> Program:
    """Single-function threaded program with allocator-lock traffic."""
    p = Program(name="threads", code_kloc=0.2)
    p.add_function(
        Function(
            "main",
            [
                Stmt("setup", cost=0.001, line=10),
                ThreadCall(
                    ThreadOp.CREATE,
                    count=lambda ctx: int(ctx.params.get("nthreads", nthreads_default)),
                    body=[
                        Loop(
                            trips=allocs,
                            name="loop_1",
                            line=21,
                            body=[
                                Stmt("compute", cost=lambda ctx: 0.002 * (1 + ctx.thread), line=22),
                                ThreadCall(ThreadOp.ALLOC, hold=0.001, name="allocate", line=23),
                            ],
                        )
                    ],
                    name="pthread_create",
                    line=20,
                ),
                ThreadCall(ThreadOp.JOIN, name="pthread_join", line=30),
            ],
            source_file="threads.c",
            line=9,
        )
    )
    return p


def make_structured_program() -> Program:
    """Covers branches, nested loops, external and indirect calls."""
    p = Program(name="structured", code_kloc=0.3)
    p.add_function(
        Function("leaf_a", [Stmt("a_work", cost=0.001, line=41)], source_file="s.c", line=40)
    )
    p.add_function(
        Function("leaf_b", [Stmt("b_work", cost=0.002, line=46)], source_file="s.c", line=45)
    )
    p.add_function(
        Function(
            "recurse",
            [
                Stmt("r_work", cost=0.0005, line=51),
                Branch(
                    lambda ctx: ctx.iteration < 1,
                    then_body=[Call("recurse", line=53)],
                    name="rec_guard",
                    line=52,
                ),
            ],
            source_file="s.c",
            line=50,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(
                    trips=2,
                    line=11,
                    body=[
                        Loop(
                            trips=2,
                            line=12,
                            body=[Stmt("inner", cost=0.0001, line=13)],
                        ),
                        Branch(
                            lambda ctx: ctx.rank % 2 == 0,
                            then_body=[Call("leaf_a", line=15)],
                            else_body=[Call("leaf_b", line=16)],
                            name="pick",
                            line=14,
                        ),
                    ],
                ),
                Call("ext_lib", target=CallTarget.EXTERNAL, cost=0.003, line=20),
                Call(
                    lambda ctx: "leaf_a" if ctx.rank == 0 else "leaf_b",
                    target=CallTarget.INDIRECT,
                    name="fptr_call",
                    line=21,
                ),
                Call("recurse", line=22),
            ],
            source_file="s.c",
            line=10,
        )
    )
    return p


@pytest.fixture(autouse=True)
def _isolate_obs_state(tmp_path, monkeypatch):
    """Reset process-global observability and cache state around every test.

    The metrics registry, the installed trace recorder, the flight
    recorder, and the default pass-result cache are process globals;
    without this fixture a test that enables tracing, bumps counters,
    or populates the cache bleeds into whichever test runs next.  Each
    test starts from a clean registry, the disabled null recorder, no
    flight ring, and an empty default cache, and anything it installs
    or accumulates is torn down afterwards.  The cache reset also makes
    the suite rerunnable under ``PERFLOW_CACHE=1`` without cross-test
    hits.

    The run ledger and crash-report dirs are pointed into ``tmp_path``:
    both are on by default in the CLI, and a test invoking ``main()``
    must not write ``.perflow/`` into the checkout (or read another
    test's runs).

    ``PERFLOW_LEDGER`` itself is snapshotted and *removed* for the
    test's duration: a value leaking from the invoking shell (or a test
    mutating ``os.environ`` directly, which ``monkeypatch`` cannot see)
    would flip ledger persistence for every later test.  The raw
    pop/restore — rather than ``monkeypatch.delenv`` — also scrubs any
    raw mutation the test itself made.
    """
    import os as _os

    from repro.cache import reset_default_cache
    from repro.obs import flight as _obs_flight
    from repro.obs import ledger as _obs_ledger

    saved_ledger = _os.environ.pop("PERFLOW_LEDGER", None)
    monkeypatch.setenv("PERFLOW_LEDGER_DIR", str(tmp_path / "obs-ledger"))
    monkeypatch.setenv("PERFLOW_CRASH_DIR", str(tmp_path / "obs-crash"))
    _obs_trace.set_recorder(None)
    _obs_flight.disable()
    _obs_metrics.registry.reset()
    _obs_ledger._collector = None
    reset_default_cache()
    yield
    _obs_trace.set_recorder(None)
    _obs_flight.disable()
    _obs_metrics.registry.reset()
    _obs_ledger._collector = None
    reset_default_cache()
    _os.environ.pop("PERFLOW_LEDGER", None)
    if saved_ledger is not None:
        _os.environ["PERFLOW_LEDGER"] = saved_ledger


@pytest.fixture
def ring_program() -> Program:
    return make_ring_program()


@pytest.fixture
def imbalanced_ring() -> Program:
    return make_ring_program(imbalanced_rank=2)


@pytest.fixture
def threaded_program() -> Program:
    return make_threaded_program()


@pytest.fixture
def structured_program() -> Program:
    return make_structured_program()

"""Tests for the PerFlowGraph dataflow executor and the PerFlow facade."""

import io

import pytest

from repro.dataflow.api import PerFlow, _parse_np
from repro.dataflow.graph import PerFlowGraph
from repro.pag.sets import VertexSet

from tests.conftest import make_ring_program


# ------------------------------------------------------------- PerFlowGraph
def test_linear_pipeline():
    g = PerFlowGraph("p")
    x = g.input("x")
    doubled = g.add_pass(lambda v: v * 2, x, name="double")
    plus = g.add_pass(lambda v: v + 1, doubled, name="inc")
    out = g.run(x=10)
    assert out["double"] == 20
    assert out["inc"] == 21
    assert plus.node_id > doubled.node_id


def test_multi_input_pass():
    g = PerFlowGraph()
    a, b = g.input("a"), g.input("b")
    g.add_pass(lambda x, y: x - y, a, b, name="sub")
    assert g.run(a=5, b=3)["sub"] == 2


def test_multi_output_with_out():
    g = PerFlowGraph()
    x = g.input("x")
    pair = g.add_pass(lambda v: (v, v * 10), x, name="fan")
    g.add_pass(lambda v: v + 1, pair.out(1), name="pick")
    assert g.run(x=2)["pick"] == 21


def test_unbound_and_unknown_inputs():
    g = PerFlowGraph()
    g.input("x")
    with pytest.raises(ValueError, match="unbound"):
        g.run()
    with pytest.raises(ValueError, match="unknown"):
        g.run(x=1, y=2)


def test_bad_node_reference():
    g = PerFlowGraph()
    from repro.dataflow.graph import NodeRef

    with pytest.raises(ValueError, match="unknown node"):
        g.add_pass(lambda v: v, NodeRef(99))


def test_fixpoint_converges():
    g = PerFlowGraph()
    x = g.input("x")
    # collatz-ish: halve until odd — stabilizes
    g.add_fixpoint(lambda v: v // 2 if v % 2 == 0 else v, x, max_iters=20, name="fix")
    assert g.run(x=48)["fix"] == 3


def test_fixpoint_respects_max_iters():
    g = PerFlowGraph()
    x = g.input("x")
    g.add_fixpoint(lambda v: v + 1, x, max_iters=3, name="fix")
    assert g.run(x=0)["fix"] == 3


def test_fixpoint_on_vertex_sets():
    from repro.pag.graph import PAG
    from repro.pag.vertex import VertexLabel

    pag = PAG()
    for i in range(5):
        pag.add_vertex(VertexLabel.INSTRUCTION, f"v{i}")

    def grow(s: VertexSet) -> VertexSet:
        if len(s) >= 3:
            return s
        return s.union(VertexSet([pag.vertex(len(s))]))

    g = PerFlowGraph()
    s0 = g.input("s")
    g.add_fixpoint(grow, s0, max_iters=10, name="grow")
    out = g.run(s=VertexSet([pag.vertex(0)]))["grow"]
    assert len(out) == 3


def test_duplicate_names_suffixed():
    g = PerFlowGraph()
    x = g.input("x")
    g.add_pass(lambda v: v + 1, x, name="p")
    g.add_pass(lambda v: v + 2, x, name="p")
    out = g.run(x=0)
    assert out["p"] == 1
    assert out["p#2"] == 2


def test_input_declared_once():
    g = PerFlowGraph()
    a1 = g.input("a")
    a2 = g.input("a")
    assert a1 == a2
    assert g.num_nodes == 1


def test_to_dot():
    g = PerFlowGraph("viz")
    x = g.input("V")
    g.add_pass(lambda v: v, x, name="hotspot")
    dot = g.to_dot()
    assert "hotspot" in dot and "rankdir=LR" in dot


# ------------------------------------------------------------- PerFlow facade
def test_parse_np():
    assert _parse_np("mpirun -np 4 ./a.out") == 4
    assert _parse_np("mpiexec -n 128 ./x") == 128
    assert _parse_np("./a.out") is None
    assert _parse_np(None) is None


@pytest.fixture
def pflow_and_pag():
    pflow = PerFlow()
    pag = pflow.run(bin=make_ring_program(imbalanced_rank=1), cmd="mpirun -np 4 ./a.out")
    return pflow, pag


def test_run_parses_cmd(pflow_and_pag):
    pflow, pag = pflow_and_pag
    assert pag.metadata["nprocs"] == 4
    assert pag.metadata["dynamic_overhead_pct"] > 0


def test_context_registry(pflow_and_pag):
    pflow, pag = pflow_and_pag
    ctx = pflow.context(pag)
    assert ctx.run.nprocs == 4
    from repro.pag.graph import PAG

    with pytest.raises(KeyError):
        pflow.context(PAG("other"))


def test_parallel_view_cached(pflow_and_pag):
    pflow, pag = pflow_and_pag
    pv1 = pflow.parallel_view(pag)
    pv2 = pflow.parallel_view(pag)
    assert pv1 is pv2
    pv3 = pflow.parallel_view(pag, max_ranks=2)
    assert pv3 is not pv1
    assert pv3.metadata["nprocs"] == 2


def test_instances_mapping(pflow_and_pag):
    pflow, pag = pflow_and_pag
    comm = pflow.filter(pag.V, name="MPI_Waitall")
    inst = pflow.instances(comm, pag, all_ranks=True)
    assert len(inst) == 4
    assert sorted(v["process"] for v in inst) == [0, 1, 2, 3]
    assert all(v.name == "MPI_Waitall" for v in inst)


def test_instances_uses_imbalanced_ranks(pflow_and_pag):
    pflow, pag = pflow_and_pag
    comm = pflow.filter(pag.V, name="MPI_Waitall")
    v = comm[0]
    v["imbalanced_ranks"] = [3]
    inst = pflow.instances(comm, pag)
    assert [i["process"] for i in inst] == [3]


def test_listing1_flow_end_to_end(pflow_and_pag):
    pflow, pag = pflow_and_pag
    V_comm = pflow.filter(pag.V, name="MPI_*")
    V_hot = pflow.hotspot_detection(V_comm)
    V_imb = pflow.imbalance_analysis(V_hot)
    V_bd = pflow.breakdown_analysis(V_imb)
    buf = io.StringIO()
    rep = pflow.report(
        V_imb, V_bd, attrs=["name", "comm-info", "debug-info", "time"], file=buf
    )
    assert "MPI_" in buf.getvalue()
    assert rep.to_text()
    assert len(V_imb) >= 1  # rank 1's imbalance is detected


def test_set_operations(pflow_and_pag):
    pflow, pag = pflow_and_pag
    a = pflow.filter(pag.V, name="MPI_Isend")
    b = pflow.filter(pag.V, name="MPI_Irecv")
    assert len(pflow.union(a, b)) == 2
    assert len(pflow.intersection(a, b)) == 0
    assert pflow.difference(pflow.union(a, b), b) == a
    assert len(pflow.union()) == 0


def test_lowlevel_reexports(pflow_and_pag):
    pflow, _ = pflow_and_pag
    assert pflow.MPI == "mpi"
    assert "MPI_Allreduce" in pflow.COLL_COMM
    v = pflow.vertex("tmp")
    assert v.id == -1
    pat = pflow.graph()
    pat.add_vertices([(1, "A"), (2, "B")])
    assert pat.num_vertices == 2


def test_lowlevel_lca_requires_same_pag(pflow_and_pag):
    pflow, pag = pflow_and_pag
    v = pag.vertex(0)
    with pytest.raises(ValueError):
        pflow.lowest_common_ancestor(v, pflow.vertex("detached"))


def test_report_accepts_nested_lists(pflow_and_pag):
    pflow, pag = pflow_and_pag
    s = pflow.filter(pag.V, name="MPI_*")
    rep = pflow.report([s, s], attrs=["name"])
    assert rep.to_text().count("## set") == 2


# ------------------------------------------------------- observability hooks
def test_pipeline_error_truncates_to_five_diagnostics():
    from repro.dataflow.graph import PipelineError

    g = PerFlowGraph("wired-wrong")
    x = g.input("x", VertexSet)
    # Seven arity-mismatched passes: each declares two inputs but gets one.
    for i in range(7):
        g.add_pass(
            lambda a: a, x, name=f"bad{i}",
            signature=((VertexSet, VertexSet), (VertexSet,)),
        )
    with pytest.raises(PipelineError) as exc:
        g.run(x=VertexSet([]))
    err = exc.value
    assert len(err.diagnostics) == 7
    msg = str(err)
    assert "(+2 more)" in msg
    # Only the first five diagnostics are spelled out in the message.
    assert msg.count("PF802") == 5


def test_pipeline_error_no_suffix_under_six():
    from repro.dataflow.graph import PipelineError

    g = PerFlowGraph("wired-wrong")
    x = g.input("x", VertexSet)
    g.add_pass(
        lambda a: a, x, name="bad",
        signature=((VertexSet, VertexSet), (VertexSet,)),
    )
    with pytest.raises(PipelineError) as exc:
        g.run(x=VertexSet([]))
    assert "more)" not in str(exc.value)


def test_run_records_per_node_spans():
    from repro.obs import trace as obs_trace

    g = PerFlowGraph("traced")
    x = g.input("x")
    sq = g.add_pass(lambda v: [i * i for i in v], x, name="square")
    g.add_pass(lambda v: v[:2], sq, name="head")
    rec = obs_trace.enable()
    try:
        g.run(jobs=1, x=[1, 2, 3])
    finally:
        obs_trace.disable()
    pipeline = rec.find("pipeline:traced")
    assert len(pipeline) == 1
    child_names = [c.name for c in pipeline[0].children]
    assert child_names == ["pipeline.check", "node:x", "node:square", "node:head"]
    square = rec.find("node:square")[0]
    assert square.category == "dataflow.pass"
    assert square.args["in_size"] == 3 and square.args["out_size"] == 3
    head = rec.find("node:head")[0]
    assert head.args["in_size"] == 3 and head.args["out_size"] == 2
    assert rec.find("node:x")[0].category == "dataflow.input"


def test_parallel_run_records_worker_tagged_spans():
    """jobs>1: one span per node, nested under the pipeline span across
    threads, tagged with the executing worker, plus scheduler metrics."""
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    g = PerFlowGraph("traced-par")
    x = g.input("x")
    mids = [
        g.add_pass(lambda v, k=k: [i + k for i in v], x, name=f"p{k}")
        for k in range(4)
    ]
    g.add_pass(lambda *vs: sum(len(v) for v in vs), *mids, name="join")
    rec = obs_trace.enable()
    try:
        out = g.run(jobs=4, backend="thread", x=[1, 2, 3])
    finally:
        obs_trace.disable()
    assert out["join"] == 12
    pipeline = rec.find("pipeline:traced-par")[0]
    assert pipeline.args["jobs"] == 4
    child_names = {c.name for c in pipeline.children}
    # every node span is a child of the pipeline span despite running
    # on pool threads, and carries the worker id that executed it
    assert child_names == {
        "pipeline.check", "node:x", "node:p0", "node:p1", "node:p2",
        "node:p3", "node:join",
    }
    for c in pipeline.children:
        if c.name.startswith("node:"):
            assert "worker" in c.args
    assert rec.find("node:join")[0].args["out_size"] is None  # scalar
    assert obs_metrics.gauge("dataflow.scheduler.jobs").value == 4
    assert obs_metrics.gauge("dataflow.scheduler.ready_max").value >= 4
    assert obs_metrics.counter("dataflow.scheduler.nodes_parallel").value == 6


def test_fixpoint_span_reports_iterations():
    from repro.obs import trace as obs_trace

    g = PerFlowGraph()
    x = g.input("x")
    g.add_fixpoint(lambda v: v // 2 if v % 2 == 0 else v, x, max_iters=20, name="fix")
    rec = obs_trace.enable()
    try:
        g.run(x=16)
    finally:
        obs_trace.disable()
    sp = rec.find("node:fix")[0]
    assert sp.category == "dataflow.fixpoint"
    assert sp.args["converged"] is True
    assert sp.args["iterations"] == 5  # 16->8->4->2->1, +1 to observe stability


def test_fixpoint_nonconvergence_warns_and_counts(caplog):
    import logging

    from repro.obs import metrics as obs_metrics

    counter = obs_metrics.counter("dataflow.fixpoint.nonconverged")
    before = counter.value
    g = PerFlowGraph("runaway")
    x = g.input("x")
    g.add_fixpoint(lambda v: v + 1, x, max_iters=3, name="fix")
    # configure_logging (run by any earlier CLI test) stops propagation
    # at the "repro" root; caplog needs it back on to capture.
    root = logging.getLogger("repro")
    prev_propagate = root.propagate
    root.propagate = True
    try:
        with caplog.at_level(logging.WARNING, logger="repro.dataflow.graph"):
            out = g.run(x=0)
    finally:
        root.propagate = prev_propagate
    assert out["fix"] == 3  # last iterate still returned
    assert counter.value == before + 1
    [record] = [r for r in caplog.records if "did not converge" in r.message]
    assert record.levelno == logging.WARNING
    assert "'fix'" in record.getMessage()
    assert "max_iters=3" in record.getMessage()
    assert record.graph == "runaway"

"""Tests for the simulated sampler and overhead model."""

import pytest

from repro.runtime.executor import run_program
from repro.runtime.sampler import Sampler, dynamic_overhead_percent

from tests.conftest import make_ring_program


@pytest.fixture
def run():
    return run_program(make_ring_program(), nprocs=4)


def test_sample_counts_proportional_to_time(run):
    s200 = {(r.path, r.rank): r.nsamples for r in Sampler(200).samples(run)}
    s400 = {(r.path, r.rank): r.nsamples for r in Sampler(400).samples(run)}
    # doubling the frequency roughly doubles samples on hot contexts
    hot = max(s200, key=lambda k: s200[k])
    assert s400[hot] == pytest.approx(2 * s200[hot], abs=1)


def test_counters_scale_with_time(run):
    recs = Sampler(200).collect(run)
    hot = max(recs, key=lambda r: r.nsamples)
    assert hot.counters["cycles"] > 0
    assert hot.counters["cycles"] > hot.counters["l2_misses"]


def test_invalid_frequency():
    with pytest.raises(ValueError):
        Sampler(0)


def test_zero_time_contexts_skipped(run):
    for rec in Sampler(200).samples(run):
        assert rec.nsamples >= 0


def test_overhead_zero_for_empty_run():
    from repro.ir.model import Function, Program, Stmt
    from repro.runtime.records import RunResult

    p = Program(name="empty")
    p.add_function(Function("main", []))
    assert dynamic_overhead_percent(RunResult(p, 1, 1)) == 0.0


def test_overhead_grows_with_comm_density():
    light = run_program(make_ring_program(iterations=1), nprocs=4)
    heavy = run_program(make_ring_program(iterations=10), nprocs=4)
    # same per-iteration structure: more iterations, same density — the
    # overhead stays roughly constant; comparing to a compute-only run
    # shows the comm term.
    assert dynamic_overhead_percent(heavy) == pytest.approx(
        dynamic_overhead_percent(light), rel=0.5
    )

    from repro.ir.model import Function, Program, Stmt

    p = Program(name="compute_only")
    p.add_function(Function("main", [Stmt("x", cost=1.0)]))
    quiet = run_program(p, nprocs=4)
    assert dynamic_overhead_percent(quiet) < dynamic_overhead_percent(heavy)

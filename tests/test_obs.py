"""Tests for repro.obs: span tracing, metrics, self-analysis, CLI flags."""

import json
import threading

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, main
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.selfpag import analyze_trace, trace_to_pag
from repro.obs.trace import (
    NULL_SPAN,
    SpanRecorder,
    enabled,
    scoped_recorder,
    span,
    timed_span,
    traced,
)


@pytest.fixture(autouse=True)
def _restore_global_recorder():
    """Tests must never leak an installed recorder into the suite."""
    prev = obs_trace.get_recorder()
    yield
    obs_trace.set_recorder(prev if isinstance(prev, SpanRecorder) else None)


# ----------------------------------------------------------------------
# span recording
# ----------------------------------------------------------------------
def test_spans_nest_per_thread():
    rec = SpanRecorder()
    with rec.span("outer", category="t"):
        with rec.span("inner") as sp:
            sp.set(k=1)
    assert [s.name for s in rec.spans] == ["outer", "inner"]
    assert [s.name for s in rec.roots] == ["outer"]
    assert [c.name for c in rec.roots[0].children] == ["inner"]
    assert rec.find("inner")[0].args == {"k": 1}
    assert rec.roots[0].duration >= rec.roots[0].children[0].duration


def test_current_span_tracks_innermost():
    rec = obs_trace.enable()
    assert obs_trace.current_span() is None
    with span("a"):
        with span("b"):
            assert obs_trace.current_span().name == "b"
        assert obs_trace.current_span().name == "a"
    assert rec.current() is None


def test_threads_record_into_own_stacks():
    rec = obs_trace.enable()
    with span("main-root"):

        def work():
            with span("worker-root"):
                with span("worker-child"):
                    pass

        t = threading.Thread(target=work)
        t.start()
        t.join()
    roots = {s.name for s in rec.roots}
    # The worker's spans must not nest under the main thread's open span.
    assert roots == {"main-root", "worker-root"}
    worker = rec.find("worker-root")[0]
    assert [c.name for c in worker.children] == ["worker-child"]
    assert worker.tid != rec.find("main-root")[0].tid


def test_disabled_mode_returns_shared_null_span():
    assert not enabled()
    sp = span("anything", category="x", big=123)
    assert sp is NULL_SPAN
    assert not sp  # falsy => `if sp:` guards skip annotation work
    assert sp.set(a=1) is sp
    sp["k"] = 2
    assert sp.duration == 0.0
    with sp:
        pass


def test_timed_span_measures_even_when_disabled():
    assert not enabled()
    with timed_span("measured") as sp:
        sum(range(1000))
    assert sp.duration > 0.0
    # ...but records nowhere: no recorder was installed to receive it.
    assert not enabled()


def test_enable_disable_roundtrip():
    rec = obs_trace.enable()
    assert enabled()
    with span("s"):
        pass
    prev = obs_trace.disable()
    assert prev is rec
    assert not enabled()
    assert len(rec.spans) == 1


def test_scoped_recorder_restores_previous():
    outer = obs_trace.enable()
    with scoped_recorder() as rec:
        with span("inside"):
            pass
    assert obs_trace.get_recorder() is outer
    assert [s.name for s in rec.spans] == ["inside"]
    assert len(outer.spans) == 0


def test_traced_decorator_forms():
    @traced
    def plain():
        return 1

    @traced("custom.name")
    def named():
        return 2

    @traced(category="runtime")
    def categorized():
        return 3

    # Disabled: decorators are pass-through.
    assert (plain(), named(), categorized()) == (1, 2, 3)
    rec = obs_trace.enable()
    plain()
    named()
    categorized()
    names = [s.name for s in rec.spans]
    assert "custom.name" in names
    assert any("plain" in n for n in names)
    assert rec.find("custom.name")[0].category is None
    assert [s.category for s in rec.spans if "categorized" in s.name] == ["runtime"]


# ----------------------------------------------------------------------
# chrome export
# ----------------------------------------------------------------------
def test_chrome_trace_document(tmp_path):
    rec = obs_trace.enable()
    with span("root", category="demo", sizes=(1, 2)):
        with span("child", n=3):
            pass
    obs_trace.disable()
    doc = rec.to_chrome_trace(process_name="test-proc")
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    assert [e["name"] for e in complete] == ["root", "child"]
    root, child = complete
    assert root["ts"] == 0.0  # relative to the first span
    assert child["ts"] >= root["ts"]
    assert root["dur"] >= child["dur"]
    assert root["cat"] == "demo" and child["cat"] == "repro"
    assert child["args"] == {"n": 3}
    assert root["args"]["sizes"] == "(1, 2)"  # exotic values repr()ed

    path = tmp_path / "trace.json"
    nbytes = rec.save(path)
    assert nbytes == len(path.read_text("utf-8"))
    # save() writes the default process name; the events are identical.
    assert json.loads(path.read_text("utf-8")) == rec.to_chrome_trace()


def test_to_tree_filters_by_min_ms():
    rec = obs_trace.enable()
    with span("visible"):
        with span("fast-child"):
            pass
    obs_trace.disable()
    rec.find("visible")[0].t_end = rec.find("visible")[0].t_start + 0.5
    tree = rec.to_tree()
    assert "visible" in tree and "fast-child" in tree
    assert "fast-child" not in rec.to_tree(min_ms=100.0)
    assert "visible" in rec.to_tree(min_ms=100.0)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_metrics_registry_kinds():
    reg = MetricsRegistry()
    reg.counter("a.count").inc()
    reg.counter("a.count").inc(4)
    reg.gauge("a.gauge").set(2.5)
    h = reg.histogram("a.hist")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    data = reg.to_dict()
    assert data["counters"] == {"a.count": 5}
    assert data["gauges"] == {"a.gauge": 2.5}
    summ = data["histograms"]["a.hist"]
    assert summ["count"] == 3
    assert summ["min"] == 1.0 and summ["max"] == 3.0
    assert summ["mean"] == pytest.approx(2.0)
    assert "a.count" in reg and len(reg) == 3


def test_metrics_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="is a Counter, not a Gauge"):
        reg.gauge("x")


def test_metrics_save_and_text(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c").inc(7)
    reg.histogram("h").observe(2.0)
    path = tmp_path / "metrics.json"
    reg.save(str(path))
    loaded = json.loads(path.read_text("utf-8"))
    assert loaded["counters"]["c"] == 7
    assert loaded["histograms"]["h"]["count"] == 1
    text = reg.to_text()
    assert "c" in text and "counter" in text and "histogram" in text
    reg.reset()
    assert len(reg) == 0


def test_global_registry_helpers():
    before = obs_metrics.counter("test.obs.global").value
    obs_metrics.counter("test.obs.global").inc()
    assert obs_metrics.counter("test.obs.global").value == before + 1
    assert obs_metrics.registry.get("test.obs.global") is not None


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
def test_logger_hierarchy_and_levels(capsys):
    import logging

    log = get_logger("dataflow.graph")
    assert log.name == "repro.dataflow.graph"
    assert get_logger("repro.pag").name == "repro.pag"
    root = logging.getLogger("repro")
    try:
        configure_logging(verbosity=0)
        assert root.level == logging.WARNING
        configure_logging(verbosity=1)
        assert root.level == logging.INFO
        configure_logging(verbosity=2)
        assert root.level == logging.DEBUG
        configure_logging(quiet=True)
        assert root.level == logging.ERROR
        # Idempotent: reconfiguring must not stack handlers.
        configure_logging(verbosity=1)
        configure_logging(verbosity=1)
        assert len(root.handlers) == 1
    finally:
        configure_logging(verbosity=0)


# ----------------------------------------------------------------------
# self-analysis (trace -> PAG)
# ----------------------------------------------------------------------
def _sample_recorder() -> SpanRecorder:
    rec = obs_trace.enable()
    with span("pipeline:demo", category="dataflow"):
        with span("node:filter", category="dataflow.pass", in_size=10, out_size=4):
            sum(range(20000))
        with span("node:hotspot", category="dataflow.pass", in_size=4, out_size=2):
            sum(range(1000))
    obs_trace.disable()
    return rec


def test_trace_to_pag_from_recorder():
    rec = _sample_recorder()
    pag = trace_to_pag(rec)
    names = {v.name for v in pag.vs}
    assert {"trace", "pipeline:demo", "node:filter", "node:hotspot"} <= names
    assert pag.num_edges == 3  # root->pipeline, pipeline->each node
    pipe = next(v for v in pag.vs if v.name == "pipeline:demo")
    child = next(v for v in pag.vs if v.name == "node:filter")
    # Exclusive time strips children; inclusive keeps them.
    assert pipe["total_time"] >= pipe["time"]
    assert child["in_size"] == 10 and child["out_size"] == 4
    assert child["debug-info"] == "dataflow.pass"


def test_trace_to_pag_from_chrome_doc_and_path(tmp_path):
    rec = _sample_recorder()
    doc = rec.to_chrome_trace()
    pag_doc = trace_to_pag(doc)
    path = tmp_path / "t.json"
    rec.save(path)
    pag_path = trace_to_pag(path)
    for pag in (pag_doc, pag_path):
        names = {v.name for v in pag.vs}
        assert {"pipeline:demo", "node:filter", "node:hotspot"} <= names
        assert pag.num_edges == 3
        pipe = next(v for v in pag.vs if v.name == "pipeline:demo")
        kids = sum(1 for e in pag.edges() if e.src_id == pipe.id)
        assert kids == 2


def test_trace_to_pag_rejects_garbage(tmp_path):
    with pytest.raises((ValueError, KeyError)):
        trace_to_pag({"not": "a trace"})


def test_analyze_trace_end_to_end(tmp_path):
    rec = _sample_recorder()
    reg = MetricsRegistry()
    reg.counter("demo.count").inc(3)
    mpath = tmp_path / "m.json"
    reg.save(str(mpath))
    res = analyze_trace(rec, top=5, metrics_path=mpath)
    assert len(res.hotspots) >= 1
    hot_names = {v.name for v in res.hotspots}
    assert "trace" not in hot_names  # synthetic root excluded
    text = res.to_text(top=5)
    assert "self-analysis" in text
    assert "node:filter" in text
    assert "demo.count" in text


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    tpath = tmp_path / "t.json"
    mpath = tmp_path / "m.json"
    rc = main(
        [
            "paradigm", "mpi_profiler", "--app", "cg",
            "--np", "4", "--class", "S",
            "--trace", str(tpath), "--metrics", str(mpath),
        ]
    )
    assert rc == EXIT_OK
    assert not enabled()  # recorder uninstalled after the command
    captured = capsys.readouterr()
    assert "MPI_" in captured.out
    doc = json.loads(tpath.read_text("utf-8"))
    node_events = [
        e
        for e in doc["traceEvents"]
        if e.get("ph") == "X" and e["name"].startswith("node:")
    ]
    names = {e["name"] for e in node_events}
    assert {"node:comm_filter", "node:hotspot", "node:profile_rows"} <= names
    for e in node_events:
        assert "in_size" in e["args"] and "out_size" in e["args"]
    metrics = json.loads(mpath.read_text("utf-8"))
    assert metrics["counters"]["runtime.runs"] >= 1

    # Round-trip: self-analysis over the trace we just wrote.
    rc = main(["obs", "analyze", str(tpath), "--metrics", str(mpath)])
    assert rc == EXIT_OK
    out = capsys.readouterr().out
    assert "self-analysis" in out
    assert "node:" in out


def test_cli_app_conflicts_with_positional(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "cg", "--app", "ep"])
    assert exc.value.code == EXIT_USAGE
    assert "given twice" in capsys.readouterr().err


def test_cli_requires_some_program(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["paradigm", "communication"])
    assert exc.value.code == EXIT_USAGE
    assert "needs a program" in capsys.readouterr().err


def test_cli_obs_analyze_missing_file(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["obs", "analyze", "/no/such/trace.json"])
    assert exc.value.code == EXIT_USAGE


def test_cli_verbose_quiet_flags(capsys):
    import logging

    try:
        assert main(["list", "-v"]) == EXIT_OK
        assert logging.getLogger("repro").level == logging.INFO
        assert main(["list", "-q"]) == EXIT_OK
        assert logging.getLogger("repro").level == logging.ERROR
    finally:
        configure_logging(verbosity=0)


# ----------------------------------------------------------------------
# streaming quantiles (P^2)
# ----------------------------------------------------------------------
def test_histogram_quantiles_exact_below_five():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    assert h.quantile(0.5) == 0.0  # empty
    for v in (5.0, 1.0, 3.0):
        h.observe(v)
    assert h.quantile(0.5) == 3.0  # exact median during warm-up
    with pytest.raises(KeyError):
        h.quantile(0.42)  # only p50/p95/p99 are tracked
    summ = h.summary()
    assert summ["p50"] == 3.0
    assert summ["p95"] == pytest.approx(4.8)  # interpolated


def test_histogram_quantiles_streaming_accuracy():
    import random

    rng = random.Random(42)
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for _ in range(5000):
        h.observe(rng.random())
    summ = h.summary()
    assert summ["p50"] == pytest.approx(0.50, abs=0.04)
    assert summ["p95"] == pytest.approx(0.95, abs=0.03)
    assert summ["p99"] == pytest.approx(0.99, abs=0.02)
    assert summ["p50"] <= summ["p95"] <= summ["p99"]


def test_quantiles_reach_every_export():
    reg = MetricsRegistry()
    h = reg.histogram("q")
    for v in range(1, 101):
        h.observe(float(v))
    doc = reg.to_dict()
    assert {"p50", "p95", "p99"} <= set(doc["histograms"]["q"])
    text = reg.to_text()
    assert "p50=" in text and "p95=" in text and "p99=" in text
    # Quantiles survive a reset as zeros, not stale markers.
    reg.reset()
    reg.histogram("q").observe(1.0)
    assert reg.histogram("q").summary()["p50"] == 1.0


# ----------------------------------------------------------------------
# chrome trace: metrics metadata + reconstruction
# ----------------------------------------------------------------------
def test_chrome_trace_embeds_metrics_snapshot():
    obs_metrics.registry.counter("test.embedded").inc(7)
    rec = obs_trace.enable()
    with span("root"):
        pass
    obs_trace.disable()
    doc = rec.to_chrome_trace()
    meta = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "M"}
    assert "perflow_metrics" in meta
    snapshot = meta["perflow_metrics"]["args"]["metrics"]
    assert snapshot["counters"]["test.embedded"] == 7
    # Byte-stable: exporting the same recorder twice is identical.
    assert json.dumps(doc, sort_keys=True) == json.dumps(
        rec.to_chrome_trace(), sort_keys=True
    )
    # An explicit snapshot overrides the live registry.
    frozen = rec.to_chrome_trace(metrics={"counters": {"x": 1}})
    meta2 = {e["name"]: e for e in frozen["traceEvents"] if e["ph"] == "M"}
    assert meta2["perflow_metrics"]["args"]["metrics"] == {"counters": {"x": 1}}


def test_from_chrome_trace_rebuilds_nesting(tmp_path):
    rec = obs_trace.enable()
    with span("outer", category="demo"):
        with span("mid", k=1):
            with span("leaf"):
                pass
        with span("mid2"):
            pass
    obs_trace.disable()
    doc = rec.to_chrome_trace()
    rebuilt = obs_trace.SpanRecorder.from_chrome_trace(doc)
    assert [s.name for s in rebuilt.roots] == ["outer"]
    outer = rebuilt.roots[0]
    assert [c.name for c in outer.children] == ["mid", "mid2"]
    assert [c.name for c in outer.children[0].children] == ["leaf"]
    assert rebuilt.find("outer")[0].category == "demo"
    assert rebuilt.find("mid")[0].args == {"k": 1}
    assert all(s.t_end >= s.t_start for s in rebuilt.spans)


def test_cli_obs_analyze_tree(tmp_path, capsys):
    rec = obs_trace.enable()
    with span("tree-root"):
        with span("tree-child"):
            pass
    obs_trace.disable()
    path = tmp_path / "t.json"
    rec.save(path)

    assert main(["obs", "analyze", str(path), "--tree"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "tree-root" in out and "tree-child" in out

    # --min-ms prunes short spans from the rendering.
    assert main(["obs", "analyze", str(path), "--tree", "--min-ms", "60000"]) == EXIT_OK
    assert "tree-child" not in capsys.readouterr().out


def test_cli_obs_analyze_tree_empty_trace_is_usage_error(tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text(json.dumps({"traceEvents": []}), "utf-8")
    with pytest.raises(SystemExit) as exc:
        main(["obs", "analyze", str(path), "--tree"])
    assert exc.value.code == EXIT_USAGE

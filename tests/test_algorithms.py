"""Tests for the graph algorithm library."""

import pytest

from repro.algorithms import (
    ancestors,
    bfs,
    critical_path,
    descendants,
    dfs_preorder,
    graph_difference,
    label_propagation,
    louvain_communities,
    lowest_common_ancestor,
    modularity,
    PatternGraph,
    subgraph_matching,
    topological_order,
)
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, VertexLabel


def diamond():
    r"""a -> b, a -> c, b -> d, c -> d."""
    g = PAG("diamond")
    for name in "abcd":
        g.add_vertex(VertexLabel.INSTRUCTION, name)
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(0, 2, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 3, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(2, 3, EdgeLabel.INTRA_PROCEDURAL)
    return g


# ---------------------------------------------------------------- traversal
def test_bfs_order_and_membership():
    g = diamond()
    order = [v.name for v in bfs(g, [g.vertex(0)])]
    assert order[0] == "a"
    assert set(order) == {"a", "b", "c", "d"}
    assert order.index("d") == 3


def test_bfs_direction_in():
    g = diamond()
    order = {v.name for v in bfs(g, [g.vertex(3)], direction="in")}
    assert order == {"a", "b", "c", "d"}


def test_bfs_max_depth():
    g = diamond()
    names = {v.name for v in bfs(g, [g.vertex(0)], max_depth=1)}
    assert names == {"a", "b", "c"}


def test_bfs_edge_filter():
    g = diamond()
    names = {v.name for v in bfs(g, [g.vertex(0)], edge_ok=lambda e: e.dst_id != 1)}
    assert "b" not in names


def test_bfs_invalid_direction():
    g = diamond()
    with pytest.raises(ValueError):
        list(bfs(g, [g.vertex(0)], direction="sideways"))


def test_dfs_preorder():
    g = diamond()
    order = [v.name for v in dfs_preorder(g, g.vertex(0))]
    assert order[0] == "a"
    assert len(order) == 4


def test_topological_order():
    g = diamond()
    order = topological_order(g)
    pos = {vid: i for i, vid in enumerate(order)}
    for e in g.edges():
        assert pos[e.src_id] < pos[e.dst_id]


def test_topological_cycle_raises():
    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "x")
    g.add_vertex(VertexLabel.INSTRUCTION, "y")
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 0, EdgeLabel.INTRA_PROCEDURAL)
    with pytest.raises(ValueError, match="cycle"):
        topological_order(g)


def test_ancestors_descendants():
    g = diamond()
    assert ancestors(g, g.vertex(3)) == {0, 1, 2}
    assert descendants(g, g.vertex(0)) == {1, 2, 3}
    assert ancestors(g, g.vertex(0)) == set()


# ---------------------------------------------------------------- LCA
def test_lca_simple_diamond():
    g = diamond()
    anc, path = lowest_common_ancestor(g, g.vertex(1), g.vertex(2))
    assert anc.name == "a"
    assert len(path) == 2
    assert {e.dst.name for e in path} == {"b", "c"}


def test_lca_same_vertex():
    g = diamond()
    anc, path = lowest_common_ancestor(g, g.vertex(1), g.vertex(1))
    assert anc.id == 1
    assert path == []


def test_lca_ancestor_case():
    g = diamond()
    anc, path = lowest_common_ancestor(g, g.vertex(3), g.vertex(1))
    assert anc.name == "b"
    assert [e.src.name for e in path] == ["b"]


def test_lca_no_common_ancestor():
    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "x")
    g.add_vertex(VertexLabel.INSTRUCTION, "y")
    anc, path = lowest_common_ancestor(g, g.vertex(0), g.vertex(1))
    assert anc is None and path == []


def test_lca_picks_deepest():
    # a -> m -> b, a -> m -> c: LCA(b, c) must be m, not a
    g = PAG()
    for name in "ambc":
        g.add_vertex(VertexLabel.INSTRUCTION, name)
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 2, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 3, EdgeLabel.INTRA_PROCEDURAL)
    anc, _ = lowest_common_ancestor(g, g.vertex(2), g.vertex(3))
    assert anc.name == "m"


def test_lca_edge_filter():
    g = diamond()
    # forbid the a->b edge: b becomes rootless, no common ancestor
    anc, _ = lowest_common_ancestor(
        g, g.vertex(1), g.vertex(2), edge_ok=lambda e: not (e.src_id == 0 and e.dst_id == 1)
    )
    assert anc is None


# ---------------------------------------------------------------- matching
def test_subgraph_matching_triangle_pattern():
    g = diamond()
    pat = PatternGraph()
    pat.add_vertex("x").add_vertex("y").add_vertex("z")
    pat.add_edge("x", "y").add_edge("x", "z")
    found = subgraph_matching(g, pat)
    # only 'a' (children b, c) and the symmetric swap
    anchors = {emb.vertices["x"].name for emb in found}
    assert anchors == {"a"}
    assert len(found) == 2  # (y,z)=(b,c) and (c,b)


def test_subgraph_matching_with_labels():
    g = PAG()
    g.add_vertex(VertexLabel.CALL, "MPI_Send", CallKind.COMM)
    g.add_vertex(VertexLabel.LOOP, "loop_1")
    g.add_edge(1, 0, EdgeLabel.INTRA_PROCEDURAL)
    pat = PatternGraph()
    pat.add_vertex("l", label=VertexLabel.LOOP)
    pat.add_vertex("c", call_kind=CallKind.COMM, name="MPI_*")
    pat.add_edge("l", "c", label=EdgeLabel.INTRA_PROCEDURAL)
    assert len(subgraph_matching(g, pat)) == 1
    pat2 = PatternGraph()
    pat2.add_vertex("l", label=VertexLabel.LOOP)
    pat2.add_vertex("c", name="MPI_Recv")
    pat2.add_edge("l", "c")
    assert subgraph_matching(g, pat2) == []


def test_subgraph_matching_injective():
    # pattern x->y on a single self-loop-free edge cannot map x and y to
    # the same data vertex
    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "a")
    g.add_vertex(VertexLabel.INSTRUCTION, "b")
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    pat = PatternGraph()
    pat.add_vertex("x").add_vertex("y")
    pat.add_edge("x", "y")
    found = subgraph_matching(g, pat)
    assert len(found) == 1
    emb = found[0]
    assert emb.vertices["x"].id != emb.vertices["y"].id


def test_subgraph_matching_candidates_and_limit():
    g = diamond()
    pat = PatternGraph()
    pat.add_vertex("x").add_vertex("y")
    pat.add_edge("x", "y")
    all_matches = subgraph_matching(g, pat)
    assert len(all_matches) == 4
    limited = subgraph_matching(g, pat, limit=2)
    assert len(limited) == 2
    anchored = subgraph_matching(g, pat, candidates=[g.vertex(1)])
    assert all(emb.vertices["x"].id == 1 for emb in anchored)


def test_pattern_listing6_api():
    pat = PatternGraph()
    pat.add_vertices([(1, "A"), (2, "B"), (3, "C"), (4, "D"), (5, "E")])
    pat.add_edges([(1, 3), (2, 3), (3, 4), (3, 5)])
    assert pat.num_vertices == 5
    with pytest.raises(ValueError):
        pat.add_vertex(1)
    with pytest.raises(KeyError):
        pat.add_edge(1, 99)


# ---------------------------------------------------------------- community
def two_cliques():
    g = PAG()
    for i in range(8):
        g.add_vertex(VertexLabel.INSTRUCTION, f"n{i}")
    for group in (range(0, 4), range(4, 8)):
        group = list(group)
        for i in group:
            for j in group:
                if i < j:
                    g.add_edge(i, j, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(3, 4, EdgeLabel.INTRA_PROCEDURAL)  # weak bridge
    return g


def test_label_propagation_two_cliques():
    g = two_cliques()
    comms = label_propagation(g)
    assert len({comms[i] for i in range(4)}) == 1
    assert len({comms[i] for i in range(4, 8)}) == 1
    assert comms[0] != comms[7]


def test_louvain_two_cliques():
    g = two_cliques()
    comms = louvain_communities(g)
    assert comms[0] == comms[1] == comms[2] == comms[3]
    assert comms[4] == comms[5] == comms[6] == comms[7]
    assert comms[0] != comms[4]


def test_modularity_good_partition_beats_trivial():
    g = two_cliques()
    good = louvain_communities(g)
    trivial = {i: 0 for i in range(8)}
    assert modularity(g, good) > modularity(g, trivial)


def test_community_determinism():
    g = two_cliques()
    assert label_propagation(g) == label_propagation(g)
    assert louvain_communities(g) == louvain_communities(g)


# ---------------------------------------------------------------- critical path
def test_critical_path_weighted():
    g = diamond()
    g.vertex(0)["time"] = 1.0
    g.vertex(1)["time"] = 5.0
    g.vertex(2)["time"] = 2.0
    g.vertex(3)["time"] = 1.0
    vertices, edges, weight = critical_path(g)
    assert [v.name for v in vertices] == ["a", "b", "d"]
    assert weight == pytest.approx(7.0)
    assert len(edges) == 2


def test_critical_path_excludes_wait():
    g = diamond()
    g.vertex(0)["time"] = 1.0
    g.vertex(1)["time"] = 5.0
    g.vertex(1)["wait"] = 5.0  # all wait: contributes nothing
    g.vertex(2)["time"] = 2.0
    g.vertex(3)["time"] = 1.0
    vertices, _, weight = critical_path(g)
    assert [v.name for v in vertices] == ["a", "c", "d"]
    assert weight == pytest.approx(4.0)


def test_critical_path_empty_graph():
    assert critical_path(PAG()) == ([], [], 0.0)


# ---------------------------------------------------------------- difference
def _metric_graph(times):
    g = PAG()
    for i, t in enumerate(times):
        g.add_vertex(VertexLabel.INSTRUCTION, f"v{i}", properties={"time": t})
    for i in range(1, len(times)):
        g.add_edge(0, i, EdgeLabel.INTRA_PROCEDURAL)
    return g


def test_graph_difference_basic():
    g1 = _metric_graph([5.0, 3.0])
    g2 = _metric_graph([2.0, 3.0])
    d = graph_difference(g1, g2)
    assert d.vertex(0)["time"] == pytest.approx(3.0)
    assert d.vertex(1)["time"] == pytest.approx(0.0)
    assert d.num_edges == g1.num_edges


def test_graph_difference_scale():
    g1 = _metric_graph([10.0])
    g2 = _metric_graph([3.0])
    d = graph_difference(g1, g2, scale2=2.0)
    assert d.vertex(0)["time"] == pytest.approx(4.0)


def test_graph_difference_structure_mismatch():
    with pytest.raises(ValueError, match="structurally identical"):
        graph_difference(_metric_graph([1.0]), _metric_graph([1.0, 2.0]))


def test_graph_difference_name_mismatch():
    g1 = _metric_graph([1.0])
    g2 = PAG()
    g2.add_vertex(VertexLabel.INSTRUCTION, "other", properties={"time": 1.0})
    with pytest.raises(ValueError, match="mismatch"):
        graph_difference(g1, g2)
    d = graph_difference(g1, g2, strict=False)
    assert d.vertex(0)["time"] == pytest.approx(0.0)


def test_graph_difference_per_rank_vectors():
    import numpy as np

    g1 = _metric_graph([4.0])
    g2 = _metric_graph([2.0])
    g1.vertex(0)["time_per_rank"] = np.array([1.0, 3.0])
    g2.vertex(0)["time_per_rank"] = np.array([1.0, 1.0])
    d = graph_difference(g1, g2)
    assert np.allclose(d.vertex(0)["time_per_rank"], [0.0, 2.0])
    # mismatched rank counts: subtract the ideal-scaling projection
    # (mean(b) * n_b / n_a = 2.0 * 1/2 = 1.0 per rank)
    g2.vertex(0)["time_per_rank"] = np.array([2.0])
    d2 = graph_difference(g1, g2)
    assert np.allclose(d2.vertex(0)["time_per_rank"], [0.0, 2.0])

"""Unit tests for static analysis (the Dyninst substitute)."""

import pytest

from repro.ir.binary import BYTES_PER_NODE, binary_info
from repro.ir.model import (
    Call,
    CallTarget,
    Function,
    Loop,
    Program,
    Stmt,
)
from repro.ir.static_analysis import analyze, static_analysis_cost
from repro.pag.vertex import CallKind, VertexLabel

from tests.conftest import make_ring_program, make_structured_program


def test_top_down_view_is_tree(ring_program):
    res = analyze(ring_program)
    pag = res.pag
    # Table 2's invariant: |E| = |V| - 1
    assert pag.num_edges == pag.num_vertices - 1
    # every non-root vertex has exactly one parent
    for v in pag.vertices():
        assert pag.in_degree(v) == (0 if v.id == 0 else 1)


def test_root_is_entry_function(ring_program):
    res = analyze(ring_program)
    root = res.pag.vertex(0)
    assert root.label is VertexLabel.FUNCTION
    assert root.name == "main"


def test_user_calls_inlined(ring_program):
    res = analyze(ring_program)
    funcs = [v for v in res.pag.vertices() if v.label is VertexLabel.FUNCTION]
    # main + one inlined instance of work
    assert sorted(v.name for v in funcs) == ["main", "work"]


def test_comm_calls_are_comm_kind(ring_program):
    res = analyze(ring_program)
    comm = [v for v in res.pag.vertices() if v.call_kind is CallKind.COMM]
    names = {v.name for v in comm}
    assert {"MPI_Isend", "MPI_Irecv", "MPI_Waitall", "MPI_Allreduce"} <= names


def test_loop_auto_naming_hierarchical():
    p = Program(name="loops")
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=1, body=[Loop(trips=1, body=[Stmt("x", 0)])]),
                Loop(trips=1, body=[]),
            ],
        )
    )
    res = analyze(p)
    names = [v.name for v in res.pag.vertices() if v.label is VertexLabel.LOOP]
    assert names == ["loop_1", "loop_1.1", "loop_2"]


def test_explicit_loop_names_kept():
    p = Program(name="loops")
    p.add_function(Function("main", [Loop(trips=1, body=[], name="loop_10")]))
    res = analyze(p)
    assert any(v.name == "loop_10" for v in res.pag.vertices())


def test_debug_info_attached(ring_program):
    res = analyze(ring_program)
    waitall = next(v for v in res.pag.vertices() if v.name == "MPI_Waitall")
    assert waitall["debug-info"] == "ring.c:24"


def test_external_call_leaf():
    p = make_structured_program()
    res = analyze(p)
    ext = [v for v in res.pag.vertices() if v.call_kind is CallKind.EXTERNAL]
    assert len(ext) == 1
    assert ext[0].name == "ext_lib"
    assert res.pag.out_degree(ext[0]) == 0


def test_indirect_call_unresolved_without_trace():
    p = make_structured_program()
    res = analyze(p)
    ind = [v for v in res.pag.vertices() if v.call_kind is CallKind.INDIRECT]
    assert len(ind) == 1
    assert ind[0].id in res.unresolved_calls
    assert res.pag.out_degree(ind[0]) == 0


def test_indirect_call_expanded_with_trace():
    p = make_structured_program()
    # find the indirect call node's uid
    main = p.function("main")
    ind_node = next(
        n for n in main.body if isinstance(n, Call) and n.target is CallTarget.INDIRECT
    )
    res = analyze(p, {ind_node.uid: {"leaf_a", "leaf_b"}})
    ind = next(v for v in res.pag.vertices() if v.call_kind is CallKind.INDIRECT)
    assert res.unresolved_calls == []
    children = {v.name for v in res.pag.successors(ind)}
    assert children == {"leaf_a", "leaf_b"}


def test_recursion_cut_and_marked():
    p = make_structured_program()
    res = analyze(p)
    rec = [v for v in res.pag.vertices() if v.call_kind is CallKind.RECURSIVE]
    assert rec, "recursive call sites must be marked"
    # expansion is bounded: recursive instances of `recurse` are finite
    rec_funcs = [v for v in res.pag.vertices() if v.name == "recurse" and v.label is VertexLabel.FUNCTION]
    assert 1 <= len(rec_funcs) <= 4


def test_path_index_roundtrip(ring_program):
    res = analyze(ring_program)
    for path, vid in res.path_to_vertex.items():
        assert res.vertex_for_path(path).id == vid


def test_longest_prefix_fallback(ring_program):
    res = analyze(ring_program)
    some_path = max(res.path_to_vertex, key=len)
    deeper = some_path + (99999,)
    v = res.vertex_for_path(deeper)
    assert v.id == res.path_to_vertex[some_path]
    assert res.vertex_for_path((424242,)) is None


def test_static_cost_scales_with_binary_size():
    small = Program(name="s", metadata={"binary_bytes": 60_000})
    small.add_function(Function("main", [Stmt("x", 0)]))
    big = Program(name="b", metadata={"binary_bytes": 14_670_000})
    big.add_function(Function("main", [Stmt("x", 0)]))
    assert static_analysis_cost(big) > static_analysis_cost(small)
    # LAMMPS-sized binary lands in the seconds range (paper: 5.34 s)
    assert 3.0 < static_analysis_cost(big) < 8.0


def test_binary_info_estimate_and_declared():
    p = Program(name="e", code_kloc=1.5)
    p.add_function(Function("main", [Stmt("x", 0), Stmt("y", 0)]))
    info = binary_info(p)
    assert info.binary_bytes == 2 * BYTES_PER_NODE
    p2 = Program(name="d", metadata={"binary_bytes": 123})
    p2.add_function(Function("main", []))
    assert binary_info(p2).binary_bytes == 123


def test_measured_static_seconds_positive(ring_program):
    res = analyze(ring_program)
    assert res.static_seconds > 0
    assert res.modeled_static_seconds > 0

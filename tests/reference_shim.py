"""Dict-backed reference model of the PAG's public element/set surface.

This is an *independent* re-implementation of the semantics the columnar
PAG promises — each vertex/edge is a plain dict of properties, every
operation is a straightforward Python loop.  The equivalence test
(`test_columnar_equivalence.py`) drives the real columnar PAG and this
shim through identical operation sequences and asserts identical
results, so any divergence in the columnar fast paths is caught by
property-based search rather than by hand-picked examples.

The shim deliberately avoids importing anything from ``repro.pag``
except the public enums, so it cannot accidentally share a buggy code
path with the implementation under test.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Dict, List, Optional, Tuple

from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.vertex import CallKind, VertexLabel


class RefVertex:
    def __init__(self, vid: int, label: VertexLabel, name: str, call_kind: Optional[CallKind]):
        self.id = vid
        self.label = label
        self.name = name
        self.call_kind = call_kind
        self.props: Dict[str, Any] = {}

    def get(self, key: str) -> Any:
        if key == "name":
            return self.name
        if key == "type":
            if self.label is VertexLabel.CALL and self.call_kind is CallKind.COMM:
                return "mpi"
            return self.label.value
        return self.props.get(key)


class RefEdge:
    def __init__(
        self,
        eid: int,
        src: int,
        dst: int,
        label: EdgeLabel,
        comm_kind: Optional[CommKind],
    ):
        self.id = eid
        self.src = src
        self.dst = dst
        self.label = label
        self.comm_kind = comm_kind
        self.props: Dict[str, Any] = {}

    def get(self, key: str) -> Any:
        return self.props.get(key)


def _numeric(value: Any) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _dedup(ids: List[int]) -> List[int]:
    seen = set()
    out = []
    for i in ids:
        if i not in seen:
            seen.add(i)
            out.append(i)
    return out


class RefPAG:
    """Reference graph: lists of dict-backed vertices and edges."""

    def __init__(self) -> None:
        self.vertices: List[RefVertex] = []
        self.edges: List[RefEdge] = []

    # -- construction --------------------------------------------------
    def add_vertex(
        self,
        label: VertexLabel,
        name: str,
        call_kind: Optional[CallKind] = None,
    ) -> int:
        v = RefVertex(len(self.vertices), label, name, call_kind)
        self.vertices.append(v)
        return v.id

    def add_edge(
        self,
        src: int,
        dst: int,
        label: EdgeLabel,
        comm_kind: Optional[CommKind] = None,
    ) -> int:
        e = RefEdge(len(self.edges), src, dst, label, comm_kind)
        self.edges.append(e)
        return e.id

    # -- bulk property access ------------------------------------------
    def vertex_values(self, ids: List[int], key: str) -> List[Any]:
        return [self.vertices[i].get(key) for i in ids]

    def edge_values(self, ids: List[int], key: str) -> List[Any]:
        return [self.edges[i].get(key) for i in ids]

    def vertex_sum(self, ids: List[int], key: str) -> float:
        return sum(_numeric(self.vertices[i].get(key)) for i in ids)

    # -- ordering -------------------------------------------------------
    def sort_vertices(self, ids: List[int], metric: str, reverse: bool = True) -> List[int]:
        keyed = [(_numeric(self.vertices[i].get(metric)), pos) for pos, i in enumerate(ids)]
        order = sorted(
            range(len(ids)),
            key=lambda p: (-keyed[p][0] if reverse else keyed[p][0], p),
        )
        return [ids[p] for p in order]

    # -- set algebra (order-preserving, first-occurrence dedup) --------
    @staticmethod
    def union(a: List[int], b: List[int]) -> List[int]:
        return _dedup(list(a) + list(b))

    @staticmethod
    def intersection(a: List[int], b: List[int]) -> List[int]:
        bset = set(b)
        return [i for i in _dedup(a) if i in bset]

    @staticmethod
    def difference(a: List[int], b: List[int]) -> List[int]:
        bset = set(b)
        return [i for i in _dedup(a) if i not in bset]

    # -- selection ------------------------------------------------------
    def select_vertices(
        self,
        ids: List[int],
        name: Optional[str] = None,
        label: Optional[VertexLabel] = None,
        call_kind: Optional[CallKind] = None,
        **props: Any,
    ) -> List[int]:
        out = []
        for i in ids:
            v = self.vertices[i]
            if name is not None and not fnmatch.fnmatchcase(v.name, name):
                continue
            if label is not None and v.label is not label:
                continue
            if call_kind is not None and v.call_kind is not call_kind:
                continue
            if any(v.get(k) != want for k, want in props.items()):
                continue
            out.append(i)
        return out

    def select_edges(
        self,
        ids: List[int],
        direction: Optional[str] = None,
        type: Optional[EdgeLabel] = None,  # noqa: A002 - mirror the real API
        comm_kind: Optional[CommKind] = None,
        of: Optional[int] = None,
        **props: Any,
    ) -> List[int]:
        out = []
        for i in ids:
            e = self.edges[i]
            if direction == "in" and of is not None and e.dst != of:
                continue
            if direction == "out" and of is not None and e.src != of:
                continue
            if type is not None and e.label is not type:
                continue
            if comm_kind is not None and e.comm_kind is not comm_kind:
                continue
            if any(e.get(k) != want for k, want in props.items()):
                continue
            out.append(i)
        return out

    # -- traversal ------------------------------------------------------
    def out_edges(self, vid: int) -> List[int]:
        return [e.id for e in self.edges if e.src == vid]

    def in_edges(self, vid: int) -> List[int]:
        return [e.id for e in self.edges if e.dst == vid]

    def successors(self, vid: int) -> List[int]:
        # one entry per out-edge (multigraph: not deduplicated)
        return [self.edges[i].dst for i in self.out_edges(vid)]

    def predecessors(self, vid: int) -> List[int]:
        return [self.edges[i].src for i in self.in_edges(vid)]

    def neighbors(self, vid: int) -> List[int]:
        return _dedup(self.predecessors(vid) + self.successors(vid))

    def edge_endpoints(self, ids: List[int]) -> Tuple[List[int], List[int]]:
        return (
            _dedup([self.edges[i].src for i in ids]),
            _dedup([self.edges[i].dst for i in ids]),
        )

"""Tests for PAG invariant validation and the community-scoping pass."""

import pytest

from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.pag.validate import ValidationError, validate_parallel, validate_top_down
from repro.pag.views import build_parallel_view, build_top_down_view
from repro.passes.community import community_scope
from repro.pag.vertex import VertexLabel
from repro.runtime.executor import run_program

from tests.conftest import make_ring_program, make_threaded_program


# ----------------------------------------------------------------- validate
@pytest.fixture
def built_views():
    prog = make_ring_program(imbalanced_rank=1)
    run = run_program(prog, nprocs=4)
    td, sr = build_top_down_view(prog, run)
    pv = build_parallel_view(td, sr, run)
    return td, pv


def test_real_views_validate(built_views):
    td, pv = built_views
    validate_top_down(td)
    validate_parallel(pv, td.num_vertices)


def test_all_apps_top_down_validate():
    from repro.apps import registry

    for name, build in registry("S").items():
        prog = build()
        run = run_program(prog, nprocs=4, nthreads=2)
        td, _ = build_top_down_view(prog, run)
        validate_top_down(td)


def test_validate_rejects_non_tree():
    g = PAG()
    g.add_vertex(VertexLabel.FUNCTION, "main", properties={"debug-info": "x:1"})
    g.add_vertex(VertexLabel.LOOP, "l", properties={"debug-info": "x:2"})
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)  # duplicate parent
    with pytest.raises(ValidationError, match="not a tree"):
        validate_top_down(g)


def test_validate_rejects_comm_edge_in_top_down(built_views):
    td, _ = built_views
    bad = td.copy()
    bad.add_vertex(VertexLabel.INSTRUCTION, "x", properties={"debug-info": "x:1"})
    bad.add_edge(0, bad.num_vertices - 1, EdgeLabel.INTER_PROCESS)
    with pytest.raises(ValidationError):
        validate_top_down(bad)


def test_validate_rejects_missing_root():
    g = PAG()
    g.add_vertex(VertexLabel.LOOP, "l", properties={"debug-info": "x:1"})
    with pytest.raises(ValidationError, match="expected function"):
        validate_top_down(g)


def test_validate_parallel_wrong_count(built_views):
    td, pv = built_views
    with pytest.raises(ValidationError, match="expected"):
        validate_parallel(pv, td.num_vertices + 1)


def test_validate_parallel_threaded():
    prog = make_threaded_program()
    run = run_program(prog, nprocs=2, nthreads=3, params={"nthreads": 3})
    td, sr = build_top_down_view(prog, run)
    pv = build_parallel_view(td, sr, run, expand_threads=True)
    validate_parallel(pv, td.num_vertices)


# ---------------------------------------------------------------- community
def test_community_scope_groups_interacting_ranks():
    """Two disjoint 2-rank exchange groups -> two communities."""
    from repro.ir.model import CommCall, CommOp, Function, Program, Stmt

    p = Program(name="pairs")
    p.add_function(
        Function(
            "main",
            [
                Stmt("work", cost=lambda ctx: 0.01 * (1 + ctx.rank % 2)),
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda ctx: ctx.rank ^ 1,  # pair (0,1) and (2,3)
                    nbytes=1024,
                ),
            ],
        )
    )
    run = run_program(p, nprocs=4)
    td, sr = build_top_down_view(p, run)
    pv = build_parallel_view(td, sr, run)
    groups = community_scope(pv.vs, weight="comm_bytes")
    assert len(groups) >= 2
    for group in groups:
        procs = {v["process"] for v in group}
        assert procs <= {0, 1} or procs <= {2, 3}
    # annotations present
    assert all(v["community"] is not None for g in groups for v in g)


def test_community_scope_orders_by_wait(built_views):
    _td, pv = built_views
    groups = community_scope(pv.vs)
    if len(groups) >= 2:
        waits = [sum(float(v["wait"] or 0) for v in g) for g in groups]
        assert waits == sorted(waits, reverse=True)


def test_community_scope_empty_cases():
    assert community_scope(VertexSet([])) == []
    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "lonely")
    assert community_scope(g.vs) == []  # no cross edges at all

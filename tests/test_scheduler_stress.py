"""Concurrency stress: repeated parallel runs with sleeps and failures.

A PerFlowGraph whose passes sleep on a staggered schedule (forcing real
interleaving on the pool) and raise at fixed positions is executed 50
times under ``jobs=4``.  Every iteration must terminate (no deadlock),
select the same first error as the serial sweep (deterministic error
selection), and leave no orphaned futures or worker threads behind.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.dataflow.graph import PerFlowGraph
from repro.dataflow.scheduler import resolve_jobs

ROUNDS = 50


def _build_stress_graph():
    """Three-layer diamond fan-out with two raising nodes.

    Layer 1 fans one input out to 8 sleeping passes; layer 2 pairs them
    up; layer 3 joins.  Two layer-1 nodes raise: ``flaky_2`` (node id 3)
    after a *long* sleep and ``flaky_6`` (node id 7) after a *short*
    one, so under ``jobs=4`` the higher-id failure reliably lands
    first — the scheduler must still report the lower-id one, exactly
    as the serial sweep does.
    """
    g = PerFlowGraph("stress")
    x = g.input("x")
    layer1 = []
    for k in range(8):
        if k == 2:
            def fn(v, _k=k):
                time.sleep(0.02)
                raise RuntimeError(f"flaky_{_k}")
        elif k == 6:
            def fn(v, _k=k):
                time.sleep(0.001)
                raise RuntimeError(f"flaky_{_k}")
        else:
            def fn(v, _k=k):
                time.sleep(0.002 * (_k % 3 + 1))
                return frozenset(i + _k for i in v)
        layer1.append(g.add_pass(fn, x, name=f"work_{k}"))
    layer2 = [
        g.add_pass(lambda a, b: a | b, layer1[i], layer1[i + 1], name=f"pair_{i}")
        for i in range(0, 8, 2)
    ]
    g.add_pass(lambda *vs: frozenset().union(*vs), *layer2, name="join")
    return g


def _first_error(g, jobs):
    try:
        g.run(jobs=jobs, x=frozenset({1, 2, 3}))
    except Exception as exc:  # noqa: BLE001 - the error IS the result
        return type(exc), str(exc)
    pytest.fail("stress graph was built to fail but ran to completion")


def test_fifty_rounds_no_deadlock_deterministic_error():
    g = _build_stress_graph()
    expected = _first_error(g, jobs=1)
    assert expected == (RuntimeError, "flaky_2")  # lowest failing node id
    for _ in range(ROUNDS):
        assert _first_error(g, jobs=4) == expected


def test_no_orphaned_workers_after_errors():
    """Every pool is joined before run() raises: thread count stays flat."""
    g = _build_stress_graph()
    baseline = threading.active_count()
    for _ in range(10):
        with pytest.raises(RuntimeError):
            g.run(jobs=4, x=frozenset({1}))
        assert threading.active_count() <= baseline
    assert not [
        t.name for t in threading.enumerate() if t.name.startswith("perflow-")
    ]


def test_success_path_joins_workers_too():
    g = PerFlowGraph("clean")
    x = g.input("x")
    for k in range(6):
        g.add_pass(lambda v, _k=k: frozenset(i * _k for i in v), x, name=f"p{k}")
    baseline = threading.active_count()
    for _ in range(10):
        g.run(jobs=4, x=frozenset({1, 2}))
    assert threading.active_count() <= baseline


def test_resolve_jobs_validation():
    assert resolve_jobs(None) in (1, resolve_jobs(None))  # env-dependent, >=1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(8) == 8
    for bad in (0, -2, 2.5, "4", True):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("PERFLOW_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(1) == 1  # explicit argument beats the env
    monkeypatch.setenv("PERFLOW_JOBS", "")
    assert resolve_jobs(None) == 1
    monkeypatch.setenv("PERFLOW_JOBS", "zero")
    with pytest.raises(ValueError):
        resolve_jobs(None)
    monkeypatch.setenv("PERFLOW_JOBS", "0")
    with pytest.raises(ValueError):
        resolve_jobs(None)

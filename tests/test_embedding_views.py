"""Tests for performance-data embedding and the two PAG views."""

import numpy as np
import pytest

from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.views import (
    build_parallel_view,
    build_top_down_view,
    parallel_view_stats,
)
from repro.pag.vertex import VertexLabel
from repro.runtime.executor import run_program

from tests.conftest import make_ring_program, make_threaded_program


@pytest.fixture
def ring_run(imbalanced_ring):
    run = run_program(imbalanced_ring, nprocs=4)
    td, sr = build_top_down_view(imbalanced_ring, run)
    return imbalanced_ring, run, td, sr


def test_root_time_is_sum_of_rank_elapsed(ring_run):
    _p, run, td, _sr = ring_run
    root = td.vertex(0)
    assert root["time"] == pytest.approx(sum(run.per_rank_elapsed.values()), rel=1e-6)
    pr = root["time_per_rank"]
    for rank in range(4):
        assert pr[rank] == pytest.approx(run.per_rank_elapsed[rank], rel=1e-6)


def test_inclusive_ge_exclusive_and_children(ring_run):
    _p, _run, td, _sr = ring_run
    for v in td.vertices():
        t = v["time"]
        if t is None:
            continue
        assert t >= (v["excl_time"] or 0.0) - 1e-12
        child_sum = sum((c["time"] or 0.0) for c in td.successors(v))
        assert t >= child_sum - 1e-9


def test_imbalanced_rank_visible_in_per_rank_vector(ring_run):
    _p, _run, td, _sr = ring_run
    work = next(v for v in td.vertices() if v.name == "compute")
    pr = work["time_per_rank"]
    assert int(np.argmax(pr)) == 2
    assert pr[2] > 2.5 * pr[0]


def test_comm_info_bytes(ring_run):
    _p, _run, td, _sr = ring_run
    isend = next(v for v in td.vertices() if v.name == "MPI_Isend")
    assert isend["comm-info"]["bytes"] == pytest.approx(1024 * 3 * 4)  # 3 iters x 4 ranks
    assert isend["bytes_per_rank"].sum() == pytest.approx(1024 * 3 * 4)


def test_pmu_counters_synthesized(ring_run):
    _p, _run, td, _sr = ring_run
    work = next(v for v in td.vertices() if v.name == "compute")
    assert work["cycles"] > 0
    assert work["instructions"] > 0
    # waits do not generate compute counters
    waitall = next(v for v in td.vertices() if v.name == "MPI_Waitall")
    if waitall["cycles"] is not None:
        assert waitall["cycles"] < work["cycles"]


def test_metadata_after_embedding(ring_run):
    _p, run, td, _sr = ring_run
    assert td.metadata["nprocs"] == 4
    assert td.metadata["elapsed"] == pytest.approx(run.elapsed)
    assert td.metadata["unresolved_contexts"] == 0


def test_parallel_view_shape(ring_run):
    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run)
    ntd = td.num_vertices
    assert pv.num_vertices == ntd * 4
    # flow edges: (ntd - 1) per rank
    flow_edges = [
        e for e in pv.edges() if e.label in (EdgeLabel.INTRA_PROCEDURAL, EdgeLabel.INTER_PROCEDURAL)
    ]
    assert len(flow_edges) == (ntd - 1) * 4
    # every flow vertex carries its process id
    assert pv.vertex(0)["process"] == 0
    assert pv.vertex(ntd)["process"] == 1


def test_parallel_view_comm_edges(ring_run):
    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run)
    comm = [e for e in pv.edges() if e.label is EdgeLabel.INTER_PROCESS]
    p2p = [e for e in comm if e.comm_kind is not CommKind.COLLECTIVE]
    coll = [e for e in comm if e.comm_kind is CommKind.COLLECTIVE]
    # 3 iterations x 4 ranks p2p events
    assert len(p2p) == 12
    # 3 allreduces x (nprocs-1) star edges
    assert len(coll) == 9


def test_parallel_view_stats_matches_materialized(ring_run):
    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run)
    nv, ne = parallel_view_stats(td, run)
    assert (nv, ne) == (pv.num_vertices, pv.num_edges)


def test_parallel_view_stats_matches_with_max_ranks(ring_run):
    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run, max_ranks=2)
    nv, ne = parallel_view_stats(td, run, max_ranks=2)
    assert (nv, ne) == (pv.num_vertices, pv.num_edges)


def test_parallel_view_thread_expansion():
    prog = make_threaded_program()
    run = run_program(prog, nprocs=2, nthreads=3, params={"nthreads": 3})
    td, sr = build_top_down_view(prog, run)
    pv = build_parallel_view(td, sr, run, expand_threads=True)
    # one flow per rank main thread plus one per spawned thread
    assert pv.num_vertices == td.num_vertices * 2 * (3 + 1)
    inter_thread = [e for e in pv.edges() if e.label is EdgeLabel.INTER_THREAD]
    assert len(inter_thread) == len(run.lock_events)
    # holder and waiter flows differ
    for e in inter_thread:
        assert e.src["thread"] != e.dst["thread"] or e.src.id != e.dst.id
    nv, ne = parallel_view_stats(td, run, expand_threads=True)
    assert (nv, ne) == (pv.num_vertices, pv.num_edges)


def test_parallel_view_times_are_per_unit(ring_run):
    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run)
    ntd = td.num_vertices
    compute_td = next(v for v in td.vertices() if v.name == "compute")
    t_rank2 = pv.vertex(2 * ntd + compute_td.id)["time"]
    t_rank0 = pv.vertex(0 * ntd + compute_td.id)["time"]
    assert t_rank2 > 2.5 * t_rank0


def test_static_only_top_down(ring_program):
    td, sr = build_top_down_view(ring_program)
    assert td.vertex(0)["time"] is None
    assert td.num_edges == td.num_vertices - 1


def test_slice_parallel_view(ring_run):
    from repro.pag.views import slice_parallel_view

    _p, run, td, sr = ring_run
    pv = build_parallel_view(td, sr, run)
    # flows of two ranks only
    sub = slice_parallel_view(pv, ranks=(0, 1))
    assert 0 < sub.num_vertices <= 2 * td.num_vertices
    assert all(v["process"] in (0, 1) for v in sub.vertices())
    assert all(v["orig_id"] is not None for v in sub.vertices())
    # by-name slicing keeps only the named code snippets
    sub2 = slice_parallel_view(pv, names=("MPI_Waitall",))
    assert {v.name for v in sub2.vertices()} == {"MPI_Waitall"}
    assert sub2.num_vertices == 4
    # neighborhood slicing pulls in adjacent vertices across edge kinds
    waitall = next(v for v in pv.vertices() if v.name == "MPI_Waitall")
    sub3 = slice_parallel_view(pv, names=(), around=(waitall.id,), hops=1)
    assert sub3.num_vertices >= 3
    assert sub3.metadata["sliced"] is True

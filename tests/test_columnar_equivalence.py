"""Property-based equivalence: columnar PAG vs dict-backed reference.

Hypothesis generates random graph builds — vertices with mixed-typed
properties (exercising every column kind, including type migration to
the spill column), edges, property mutations and deletions — and random
id subsets.  The same sequence is applied to the real columnar
:class:`~repro.pag.graph.PAG` and to the independent dict-backed
:class:`tests.reference_shim.RefPAG`; every public Vertex/Edge/
VertexSet/EdgeSet operation must agree element-for-element, in order.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import IN_EDGE, OUT_EDGE, EdgeSet, VertexSet
from repro.pag.vertex import CallKind, VertexLabel

from tests.reference_shim import RefPAG

NAMES = ("main", "MPI_Send", "MPI_Recv", "compute", "loop_body", "MPI_Allreduce")
PROP_KEYS = ("time", "count", "tag", "flag")

# values deliberately mix types per key so columns migrate to the spill
# dict mid-build (floats then strings in "time", ints then bools, ...)
prop_values = {
    "time": st.one_of(
        st.sampled_from([0.0, 1.5, 2.5, 2.5, 100.0, -3.25]),
        st.integers(min_value=-5, max_value=5),
    ),
    "count": st.one_of(
        st.integers(min_value=0, max_value=10),
        st.booleans(),
        st.integers(min_value=2**63, max_value=2**63 + 4),  # beyond int64
    ),
    "tag": st.one_of(st.sampled_from(["a", "b", "halo", ""]), st.none()),
    "flag": st.booleans(),
}

vertex_spec = st.tuples(
    st.sampled_from(tuple(VertexLabel)),
    st.sampled_from(NAMES),
    st.sampled_from(tuple(CallKind)),
    st.fixed_dictionaries(
        {}, optional={k: prop_values[k] for k in PROP_KEYS}
    ),
)

edge_spec = st.tuples(
    st.integers(min_value=0, max_value=10**6),  # src (mod nv)
    st.integers(min_value=0, max_value=10**6),  # dst (mod nv)
    st.sampled_from(tuple(EdgeLabel)),
    st.sampled_from(tuple(CommKind)),
    st.fixed_dictionaries(
        {}, optional={"comm_time": prop_values["time"], "bytes": prop_values["count"]}
    ),
)

# (vertex index, key, new value or None-marker for deletion)
mutation_spec = st.tuples(
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from(PROP_KEYS),
    st.one_of(st.just("__delete__"), *prop_values.values()),
)

graph_spec = st.tuples(
    st.lists(vertex_spec, min_size=1, max_size=10),
    st.lists(edge_spec, max_size=12),
    st.lists(mutation_spec, max_size=8),
)

subset = st.lists(st.integers(min_value=0, max_value=10**6), max_size=14)


def build(spec):
    """Apply one spec to both implementations."""
    vspecs, especs, mutations = spec
    pag = PAG("equiv")
    ref = RefPAG()
    for label, name, kind, props in vspecs:
        call_kind = kind if label is VertexLabel.CALL else None
        pag.add_vertex(label, name, call_kind, properties=dict(props))
        vid = ref.add_vertex(label, name, call_kind)
        ref.vertices[vid].props.update(props)
    nv = pag.num_vertices
    for src, dst, label, kind, props in especs:
        comm_kind = kind if label is EdgeLabel.INTER_PROCESS else None
        pag.add_edge(src % nv, dst % nv, label, comm_kind, properties=dict(props))
        eid = ref.add_edge(src % nv, dst % nv, label, comm_kind)
        ref.edges[eid].props.update(props)
    for vidx, key, value in mutations:
        vid = vidx % nv
        if value == "__delete__":
            pag.vertex(vid).properties.pop(key, None)
            ref.vertices[vid].props.pop(key, None)
        else:
            pag.vertex(vid)[key] = value
            ref.vertices[vid].props[key] = value
    return pag, ref


def ids_of(s):
    return [int(i) for i in s.ids()]


@settings(max_examples=60, deadline=None)
@given(graph_spec)
def test_element_accessors_match(spec):
    pag, ref = build(spec)
    for rv in ref.vertices:
        v = pag.vertex(rv.id)
        assert v.label is rv.label
        assert v.call_kind is rv.call_kind
        assert v.name == rv.name
        assert dict(v.properties) == rv.props
        for key in PROP_KEYS + ("name", "type", "no-such-key"):
            assert v[key] == rv.get(key), key
    for re_ in ref.edges:
        e = pag.edge(re_.id)
        assert (e.src_id, e.dst_id) == (re_.src, re_.dst)
        assert e.label is re_.label
        assert e.comm_kind is re_.comm_kind
        assert dict(e.properties) == re_.props


@settings(max_examples=60, deadline=None)
@given(graph_spec, subset)
def test_bulk_values_sort_top_sum_match(spec, raw_ids):
    pag, ref = build(spec)
    nv = pag.num_vertices
    ids = [i % nv for i in raw_ids]
    V = VertexSet.from_ids(pag, ids)
    ref_ids = RefPAG.union(ids, [])  # first-occurrence dedup
    assert ids_of(V) == ref_ids
    for key in PROP_KEYS + ("name", "type", "no-such-key"):
        assert V.values(key) == ref.vertex_values(ref_ids, key), key
    for reverse in (True, False):
        assert ids_of(V.sort_by("time", reverse=reverse)) == ref.sort_vertices(
            ref_ids, "time", reverse=reverse
        )
    assert ids_of(V.sort_by("time").top(3)) == ref.sort_vertices(ref_ids, "time")[:3]
    assert V.sum("time") == ref.vertex_sum(ref_ids, "time")
    want = [i for i in ref_ids if ref.vertices[i].get("time") == 2.5]
    assert ids_of(V.filter(lambda v: v["time"] == 2.5)) == want


@settings(max_examples=60, deadline=None)
@given(graph_spec, subset, subset)
def test_set_algebra_matches(spec, raw_a, raw_b):
    pag, ref = build(spec)
    nv = pag.num_vertices
    a = [i % nv for i in raw_a]
    b = [i % nv for i in raw_b]
    A = VertexSet.from_ids(pag, a)
    B = VertexSet.from_ids(pag, b)
    da, db = RefPAG.union(a, []), RefPAG.union(b, [])
    assert ids_of(A.union(B)) == RefPAG.union(da, db)
    assert ids_of(A.intersection(B)) == RefPAG.intersection(da, db)
    assert ids_of(A.difference(B)) == RefPAG.difference(da, db)
    assert ids_of(A.complement(pag.vs)) == RefPAG.difference(list(range(nv)), da)
    assert (A == B) == (set(da) == set(db))


@settings(max_examples=60, deadline=None)
@given(graph_spec, subset)
def test_select_matches(spec, raw_ids):
    pag, ref = build(spec)
    nv = pag.num_vertices
    ids = RefPAG.union([i % nv for i in raw_ids], [])
    V = VertexSet.from_ids(pag, ids)
    cases = [
        dict(name="MPI_*"),
        dict(label=VertexLabel.CALL),
        dict(call_kind=CallKind.COMM),
        dict(name="compute", label=VertexLabel.FUNCTION),
        dict(time=2.5),
        dict(count=3),
        dict(tag="halo"),
        dict(tag=None),
        dict(flag=True),
        {"no-such-key": None},
        dict(type="mpi"),
    ]
    for kwargs in cases:
        assert ids_of(V.select(**kwargs)) == ref.select_vertices(ids, **kwargs), kwargs


@settings(max_examples=60, deadline=None)
@given(graph_spec)
def test_traversal_and_edge_sets_match(spec):
    pag, ref = build(spec)
    for rv in ref.vertices:
        v = pag.vertex(rv.id)
        assert [e.id for e in v.out_edges()] == ref.out_edges(rv.id)
        assert [e.id for e in v.in_edges()] == ref.in_edges(rv.id)
        assert [s.id for s in pag.successors(v)] == ref.successors(rv.id)
        assert [p.id for p in pag.predecessors(v)] == ref.predecessors(rv.id)
        assert [n.id for n in pag.neighbors(v)] == ref.neighbors(rv.id)
    E = pag.es_all
    eids = [e.id for e in ref.edges]
    assert ids_of(E) == eids
    assert E.values("comm_time") == ref.edge_values(eids, "comm_time")
    for kwargs in (
        dict(type=EdgeLabel.INTER_PROCESS),
        dict(comm_kind=CommKind.COLLECTIVE),
        dict(comm_time=2.5),
    ):
        assert ids_of(E.select(**kwargs)) == ref.select_edges(eids, **kwargs), kwargs
    if ref.vertices:
        of = pag.vertex(0)
        assert ids_of(E.select(IN_EDGE, of=of)) == ref.select_edges(
            eids, direction="in", of=0
        )
        assert ids_of(E.select(OUT_EDGE, of=of)) == ref.select_edges(
            eids, direction="out", of=0
        )
    src_ref, dst_ref = ref.edge_endpoints(eids)
    assert ids_of(E.sources()) == src_ref
    assert ids_of(E.destinations()) == dst_ref


@settings(max_examples=40, deadline=None)
@given(graph_spec, subset)
def test_legacy_handle_sets_agree_with_columnar(spec, raw_ids):
    """Handle-list (legacy-constructed) sets behave like columnar ones."""
    pag, ref = build(spec)
    nv = pag.num_vertices
    ids = [i % nv for i in raw_ids]
    columnar = VertexSet.from_ids(pag, ids)
    legacy = VertexSet(pag.vertex(i) for i in ids)
    assert ids_of(legacy) == ids_of(columnar)
    assert legacy == columnar
    assert legacy.values("time") == columnar.values("time")
    assert ids_of(legacy.sort_by("time")) == ids_of(columnar.sort_by("time"))
    assert ids_of(legacy.select(name="MPI_*")) == ids_of(columnar.select(name="MPI_*"))

"""Tests for repro.obs.ledger: run records, diff/regressions, cost model."""

import json
import os
import time

import pytest

from repro.cli import EXIT_ISSUES, EXIT_OK, EXIT_USAGE, main
from repro.dataflow.graph import PerFlowGraph
from repro.dataflow.scheduler import run_wavefront
from repro.obs import ledger as obs_ledger
from repro.obs import trace as obs_trace
from repro.obs.ledger import (
    CostModel,
    Ledger,
    build_run_record,
    diff_records,
    find_regressions,
    resolve_ledger,
    rollup_spans,
)


# ----------------------------------------------------------------------
# configuration resolution
# ----------------------------------------------------------------------
def test_resolve_ledger_flag_wins(monkeypatch, tmp_path):
    monkeypatch.setenv(obs_ledger.ENV_LEDGER, "0")
    assert resolve_ledger(True, str(tmp_path)) == str(tmp_path)
    monkeypatch.setenv(obs_ledger.ENV_LEDGER, "1")
    assert resolve_ledger(False) is None


def test_resolve_ledger_env_and_defaults(monkeypatch, tmp_path):
    monkeypatch.delenv(obs_ledger.ENV_LEDGER, raising=False)
    monkeypatch.setenv(obs_ledger.ENV_LEDGER_DIR, str(tmp_path / "led"))
    assert resolve_ledger() == str(tmp_path / "led")  # on by default
    monkeypatch.delenv(obs_ledger.ENV_LEDGER_DIR)
    assert resolve_ledger() == obs_ledger.DEFAULT_DIR
    for off in ("0", "false", "no", "off"):
        monkeypatch.setenv(obs_ledger.ENV_LEDGER, off)
        assert resolve_ledger() is None
    monkeypatch.setenv(obs_ledger.ENV_LEDGER, "maybe")
    with pytest.raises(ValueError):
        resolve_ledger()


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
RECORD_KEYS = {
    "schema",
    "run_id",
    "time",
    "command",
    "argv",
    "program",
    "paradigm",
    "params",
    "identity",
    "pag_fingerprints",
    "wall_s",
    "cpu_s",
    "exit_code",
    "nodes",
    "spans",
    "metrics",
    "python",
    "platform",
    "pid",
}


def test_build_run_record_shape():
    rec = build_run_record(
        "run",
        ["run", "cg", "--np", "4"],
        program="cg",
        params={"np": 4, "threads": 1},
        wall_s=1.234567891,
        exit_code=0,
        pag_fingerprints=["bbb", "aaa"],
    )
    assert set(rec) == RECORD_KEYS
    assert rec["schema"] == obs_ledger.SCHEMA
    assert rec["identity"] == "run|-|cg|np=4|threads=1"
    assert rec["pag_fingerprints"] == ["aaa", "bbb"]  # sorted
    assert rec["wall_s"] == 1.234568  # rounded
    assert rec["nodes"] == [] and rec["spans"] == []
    json.dumps(rec)


def test_rollup_separates_nodes_and_tracks_cache():
    rec = obs_trace.enable()
    with obs_trace.span("pipeline:p", category="dataflow"):
        with obs_trace.span("node:hot", category="dataflow") as sp:
            sp.set(in_size=100, out_size=10, cache_hit=False)
        with obs_trace.span("node:hot", category="dataflow") as sp:
            sp.set(in_size=100, out_size=10, cache_hit=True)
        with obs_trace.span("pipeline.check", category="dataflow"):
            pass
    obs_trace.disable()
    nodes, others = rollup_spans(rec)
    assert [n["name"] for n in nodes] == ["hot"]
    hot = nodes[0]
    assert hot["count"] == 2
    assert hot["in_size"] == 100 and hot["out_size"] == 10
    assert hot["cache_hits"] == 1 and hot["cache_misses"] == 1
    assert hot["total_s"] >= hot["max_s"] >= hot["min_s"] >= 0
    other_names = {g["name"] for g in others}
    assert other_names == {"pipeline:p", "pipeline.check"}


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
# A fixed, non-zero epoch base: record times must be truthy (0.0 would
# fall back to "now" in the daily-file key) and land on one day.
T0 = 1700000000.0


def _record(identity="run|-|cg|np=4", node_s=0.1, run_id=None, t=None, fps=("f1",)):
    rec = build_run_record(
        "run", ["run", "cg"], program="cg", pag_fingerprints=list(fps)
    )
    rec["identity"] = identity
    rec["nodes"] = [
        {"name": "hot", "category": "dataflow", "count": 1, "total_s": node_s,
         "min_s": node_s, "max_s": node_s},
        {"name": "cold", "category": "dataflow", "count": 2, "total_s": 0.02,
         "min_s": 0.01, "max_s": 0.01},
    ]
    if run_id:
        rec["run_id"] = run_id
    if t is not None:
        rec["time"] = t
    return rec


def test_ledger_append_read_and_prefix_get(tmp_path):
    led = Ledger(str(tmp_path / "led"))
    a = _record(run_id="20260808T010101-1-aaaa1111")
    b = _record(run_id="20260808T020202-1-bbbb2222")
    led.append(a)
    led.append(b)
    recs = led.records()
    assert [r["run_id"] for r in recs] == [a["run_id"], b["run_id"]]
    assert [r["run_id"] for r in led.history(limit=1)] == [b["run_id"]]
    assert led.get("20260808T0101")["run_id"] == a["run_id"]
    with pytest.raises(KeyError):
        led.get("nope")
    with pytest.raises(KeyError):
        led.get("20260808T0")  # ambiguous prefix


def test_ledger_skips_corrupt_lines(tmp_path):
    led = Ledger(str(tmp_path / "led"))
    led.append(_record(run_id="20260808T010101-1-aaaa1111"))
    path = led._files()[0]
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{torn line\n")
        fh.write("42\n")  # valid JSON but not a record
        fh.write("\n")
    led.append(_record(run_id="20260808T020202-1-bbbb2222"))
    assert len(led.records()) == 2


def test_ledger_eviction_drops_oldest_never_newest(tmp_path):
    root = str(tmp_path / "led")
    led = Ledger(root, max_bytes=1)  # force eviction on every append
    os.makedirs(root)
    old = os.path.join(root, "runs-20250101.jsonl")
    with open(old, "w", encoding="utf-8") as fh:
        fh.write("x" * 4096 + "\n")
    past = time.time() - 86400
    os.utime(old, (past, past))
    led.append(_record())
    names = sorted(os.listdir(root))
    assert "runs-20250101.jsonl" not in names
    assert len(names) == 1 and names[0].startswith("runs-")


def test_baseline_matches_identity_and_fingerprints(tmp_path):
    led = Ledger(str(tmp_path / "led"))
    target = _record(t=T0 + 100.0, run_id="20260808T010105-1-eeee0005")
    matching = [
        _record(t=T0 + i, run_id=f"20260808T01010{i}-1-aaaa000{i}")
        for i in range(3)
    ]
    other_identity = _record(identity="run|-|ep|np=4", t=T0 + 50.0,
                             run_id="20260808T010103-1-cccc0003")
    other_fp = _record(t=T0 + 60.0, fps=("different",),
                       run_id="20260808T010104-1-dddd0004")
    for rec in matching + [other_identity, other_fp, target]:
        led.append(rec)
    base = led.baseline_for(target)
    assert [r["run_id"] for r in base] == [r["run_id"] for r in matching]
    assert led.baseline_for(target, last=2) == base[-2:]


# ----------------------------------------------------------------------
# diff + regressions
# ----------------------------------------------------------------------
def test_diff_records_reports_per_node_deltas():
    a = _record(node_s=0.1)
    b = _record(node_s=0.3)
    b["nodes"].append(
        {"name": "new", "category": "", "count": 1, "total_s": 0.05,
         "min_s": 0.05, "max_s": 0.05}
    )
    rows = diff_records(a, b)
    assert [r["name"] for r in rows] == ["hot", "new", "cold"]  # by |delta|
    hot = rows[0]
    assert hot["a_s"] == 0.1 and hot["b_s"] == 0.3
    assert hot["delta_s"] == pytest.approx(0.2)
    assert hot["pct"] == pytest.approx(200.0)
    new = rows[1]
    assert new["a_s"] is None and new["pct"] is None
    assert rows[2]["delta_s"] == 0.0


def test_find_regressions_needs_min_baseline():
    target = _record(node_s=10.0)
    base = [_record(node_s=0.1), _record(node_s=0.1)]
    assert find_regressions(target, base) == []


def test_find_regressions_three_gates():
    base = [_record(node_s=s) for s in (0.100, 0.101, 0.099, 0.100)]
    # Clearly slower: breaches the relative, MAD, and absolute gates.
    findings = find_regressions(_record(node_s=0.300), base)
    assert [f["name"] for f in findings] == ["hot"]
    f = findings[0]
    assert f["current_s"] == 0.3
    assert f["median_s"] == pytest.approx(0.1, abs=0.001)
    assert f["pct"] == pytest.approx(200.0, abs=3.0)
    assert f["samples"] == 4
    # Inside the 25% band: clean.
    assert find_regressions(_record(node_s=0.110), base) == []
    # Above 25% relative but under the absolute floor: clean.  "hot" at
    # 0.4ms over a 0.1s median cannot happen, so shrink the scale.
    tiny_base = [_record(node_s=s * 1e-4) for s in (1.0, 1.0, 1.0)]
    assert find_regressions(_record(node_s=2e-4), tiny_base) == []


def test_find_regressions_five_clean_reruns_no_false_positive():
    # Acceptance: realistic jitter around a stable median never flags.
    jitter = (0.100, 0.103, 0.097, 0.101, 0.099, 0.102, 0.098, 0.100)
    records = [_record(node_s=s) for s in jitter]
    for i in range(3, 8):  # 5 consecutive judgeable runs
        target, base = records[i], records[:i]
        assert find_regressions(target, base) == [], f"false positive at run {i}"


# ----------------------------------------------------------------------
# cost model + cost-ordered scheduling
# ----------------------------------------------------------------------
def test_cost_model_from_ledger_medians(tmp_path):
    led = Ledger(str(tmp_path / "led"))
    for s in (0.1, 0.3, 0.2):
        led.append(_record(node_s=s))
    cm = led.cost_model()
    assert cm.cost("hot") == pytest.approx(0.2)  # median of 0.1/0.3/0.2
    assert cm.cost("node:hot") == pytest.approx(0.2)  # span-style name
    assert cm.cost("cold") == pytest.approx(0.01)  # total 0.02 over count 2
    assert cm.cost("unknown") == 0.0
    assert cm.samples("hot") == 3
    assert "hot" in cm and len(cm) == 2
    assert cm.to_dict()["hot"] == pytest.approx(0.2)


def test_cost_model_identity_filter(tmp_path):
    led = Ledger(str(tmp_path / "led"))
    led.append(_record(identity="run|-|cg|np=4", node_s=0.1))
    led.append(_record(identity="run|-|ep|np=4", node_s=9.9))
    cm = led.cost_model(identity="run|-|cg|np=4")
    assert cm.cost("hot") == pytest.approx(0.1)


def _order_probe_graph(order):
    """Independent passes recording their execution order."""
    g = PerFlowGraph("probe")
    src = g.input("src")

    def make(name):
        def fn(_x):
            order.append(name)
            return name

        fn.__name__ = name
        return fn

    for name in ("cheap", "medium", "pricey"):
        g.add_pass(make(name), src, name=name, cacheable=False)
    return g


def test_wavefront_orders_ready_heap_by_measured_cost():
    order = []
    g = _order_probe_graph(order)
    cm = CostModel({"cheap": 0.001, "medium": 0.01, "pricey": 0.5})
    run_wavefront(g, {"src": 0}, jobs=1, cost_model=cm)
    assert order == ["pricey", "medium", "cheap"]  # descending cost
    order.clear()
    run_wavefront(g, {"src": 0}, jobs=1)  # no model: node-id order
    assert order == ["cheap", "medium", "pricey"]


def test_graph_run_accepts_cost_model():
    order = []
    g = _order_probe_graph(order)
    cm = {"pricey": 0.5, "medium": 0.01}  # plain mapping also works
    out = g.run(jobs=2, cost_model=cm, src=1)
    assert set(order) == {"cheap", "medium", "pricey"}
    assert out["pricey"] == "pricey"
    # default_cost_model flows through run() too
    order.clear()
    g2 = _order_probe_graph(order)
    g2.default_cost_model = CostModel({"pricey": 1.0})
    g2.run(jobs=2, src=1)
    assert set(order) == {"cheap", "medium", "pricey"}


def test_broken_cost_model_degrades_gracefully():
    class Evil:
        def cost(self, name):
            raise RuntimeError("no")

    order = []
    g = _order_probe_graph(order)
    run_wavefront(g, {"src": 0}, jobs=1, cost_model=Evil())
    assert sorted(order) == ["cheap", "medium", "pricey"]


# ----------------------------------------------------------------------
# CLI: ledger writes on run/paradigm/lint
# ----------------------------------------------------------------------
def _ledger_from_env():
    return Ledger(os.environ["PERFLOW_LEDGER_DIR"])  # pinned by conftest


def test_cli_run_appends_a_ledger_record(capsys):
    assert main(["run", "cg", "--np", "2", "--class", "S"]) == EXIT_OK
    recs = _ledger_from_env().records()
    assert len(recs) == 1
    rec = recs[0]
    assert rec["command"] == "run" and rec["program"] == "cg"
    assert rec["params"]["np"] == 2
    assert rec["exit_code"] == 0
    assert rec["wall_s"] > 0
    assert rec["pag_fingerprints"], "PAG fingerprint was not collected"
    # A plain `run` has no PerFlowGraph pipeline (no node:* spans), but
    # the runtime/pag phase spans still roll up.
    span_names = {g["name"] for g in rec["spans"]}
    assert "run.engine" in span_names
    assert not obs_trace.enabled()  # internal recorder uninstalled


def test_cli_no_ledger_flag_skips_record(capsys):
    assert main(["run", "cg", "--np", "2", "--class", "S", "--no-ledger"]) == EXIT_OK
    assert _ledger_from_env().records() == []


def test_cli_env_disables_ledger(monkeypatch, capsys):
    monkeypatch.setenv(obs_ledger.ENV_LEDGER, "0")
    assert main(["run", "cg", "--np", "2", "--class", "S"]) == EXIT_OK
    assert _ledger_from_env().records() == []


def test_cli_garbage_ledger_env_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv(obs_ledger.ENV_LEDGER, "bananas")
    with pytest.raises(SystemExit) as exc:
        main(["run", "cg", "--np", "2", "--class", "S"])
    assert exc.value.code == EXIT_USAGE


def test_cli_lint_is_ledgered(capsys):
    main(["lint", "cg", "--fail-on", "never"])
    recs = _ledger_from_env().records()
    assert len(recs) == 1 and recs[0]["command"] == "lint"


def test_cli_obs_history_show_diff(capsys):
    # Paradigm runs execute a PerFlowGraph, so the records carry
    # per-node rollups for show/diff to report.
    for _ in range(2):
        args = ["paradigm", "mpi_profiler", "--app", "cg", "--np", "4", "--class", "S"]
        assert main(args) == EXIT_OK
    capsys.readouterr()
    recs = _ledger_from_env().records()
    assert len(recs) == 2
    id_a, id_b = recs[0]["run_id"], recs[1]["run_id"]

    assert main(["obs", "history"]) == EXIT_OK
    out = capsys.readouterr().out
    assert id_a in out and id_b in out

    assert main(["obs", "history", "--json", "--limit", "1"]) == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert [r["run_id"] for r in doc] == [id_b]  # newest first

    assert main(["obs", "show", id_a[:-1]]) == EXIT_OK  # prefix lookup
    out = capsys.readouterr().out
    assert id_a in out and "identity:" in out and "nodes (" in out

    assert main(["obs", "diff", id_a, id_b]) == EXIT_OK
    out = capsys.readouterr().out
    assert "delta(s)" in out
    node_names = {n["name"] for n in recs[0]["nodes"]}
    assert any(name in out for name in node_names)

    assert main(["obs", "diff", id_a, id_b, "--json"]) == EXIT_OK
    rows = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in rows} >= node_names


def test_cli_obs_show_unknown_run_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["obs", "show", "zzzz"])
    assert exc.value.code == EXIT_USAGE


def test_cli_obs_regressions_end_to_end(tmp_path, capsys):
    """Acceptance: a slowed node is flagged; clean reruns never are."""
    led = Ledger(str(tmp_path / "led"))
    jitter = (0.100, 0.103, 0.097, 0.101, 0.099)
    clean = [
        _record(node_s=s, t=T0 + i, run_id=f"20260808T0101{i:02d}-1-cafe{i:04d}")
        for i, s in enumerate(jitter)
    ]
    for rec in clean:
        led.append(rec)

    # 5 consecutive clean runs: judge each against its predecessors.
    for rec in clean[3:]:
        rc = main(["obs", "regressions", "--ledger-dir", led.root,
                   "--run", rec["run_id"]])
        assert rc == EXIT_OK
        assert "no regressions" in capsys.readouterr().out

    # Sleep-injected slowdown: 3x the median must be flagged.
    slow = _record(node_s=0.300, t=T0 + 99.0, run_id="20260808T010199-1-dead9999")
    led.append(slow)
    rc = main(["obs", "regressions", "--ledger-dir", led.root, "--threshold", "25%"])
    assert rc == EXIT_ISSUES
    out = capsys.readouterr().out
    assert "hot" in out and "+" in out

    rc = main(["obs", "regressions", "--ledger-dir", led.root, "--json"])
    assert rc == EXIT_ISSUES
    doc = json.loads(capsys.readouterr().out)
    assert doc["run_id"] == slow["run_id"]
    assert doc["baseline_runs"] == 5
    assert [f["name"] for f in doc["regressions"]] == ["hot"]


def test_cli_obs_regressions_not_enough_history(tmp_path, capsys):
    led = Ledger(str(tmp_path / "led"))
    led.append(_record(run_id="20260808T010101-1-feed0001"))
    rc = main(["obs", "regressions", "--ledger-dir", led.root])
    assert rc == EXIT_OK
    assert "not enough history" in capsys.readouterr().out


def test_cli_obs_regressions_empty_ledger_is_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["obs", "regressions", "--ledger-dir", str(tmp_path / "empty")])
    assert exc.value.code == EXIT_USAGE


def test_cli_obs_regressions_bad_threshold(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["obs", "regressions", "--ledger-dir", str(tmp_path),
              "--threshold", "fast"])
    assert exc.value.code == EXIT_USAGE


def test_real_pipeline_regression_detected(capsys):
    """Slowed real pass through graph.run → ledger → regressions."""
    import time as time_mod

    led = _ledger_from_env()

    def one_run(delay):
        g = PerFlowGraph("sleepy")
        src = g.input("src")

        def napper(x):
            time_mod.sleep(delay)
            return x

        g.add_pass(napper, src, name="napper", cacheable=False)
        rec = obs_trace.enable()
        g.run(src=1)
        obs_trace.disable()
        record = build_run_record(
            "run", ["run", "sleepy"], program="sleepy", recorder=rec
        )
        led.append(record)
        return record

    for _ in range(4):
        one_run(0.005)
    slow = one_run(0.08)
    rc = main(["obs", "regressions", "--run", slow["run_id"]])
    assert rc == EXIT_ISSUES
    assert "napper" in capsys.readouterr().out


# ----------------------------------------------------------------------
# test-isolation regression: a leaked PERFLOW_LEDGER must not cross tests
# ----------------------------------------------------------------------
# These two tests are order-dependent by design (pytest runs them in
# definition order within the file): the first leaks ledger state the
# way a buggy test would — mutating ``os.environ`` directly, bypassing
# monkeypatch — and the second asserts the autouse ``_isolate_obs_state``
# fixture scrubbed every trace of it.


def test_isolation_leak_ledger_env_raw():
    os.environ["PERFLOW_LEDGER"] = "definitely-not-a-boolean"
    obs_ledger._collector = ["deadbeef"]
    # inside the test the leak is visible to the process...
    assert os.environ["PERFLOW_LEDGER"] == "definitely-not-a-boolean"


def test_isolation_ledger_env_scrubbed_between_tests():
    # ...but the next test starts clean: the garbage value would make
    # resolve_ledger() raise, and the stale collector would swallow
    # fingerprints meant for another run's record.
    assert "PERFLOW_LEDGER" not in os.environ
    assert obs_ledger._collector is None
    assert obs_ledger.resolve_ledger() is not None  # on by default again

"""Unit tests for the IR model and execution context."""

import pytest

from repro.ir.context import ExecContext, evaluate
from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)


def test_uid_assignment_on_add_function():
    p = Program(name="t")
    inner = Stmt("s", cost=1.0)
    loop = Loop(trips=2, body=[inner])
    p.add_function(Function("main", [loop]))
    assert loop.uid >= 0
    assert inner.uid >= 0
    assert loop.uid != inner.uid


def test_uids_unique_across_functions():
    p = Program(name="t")
    nodes = [Stmt(f"s{i}", cost=0.0) for i in range(5)]
    p.add_function(Function("a", nodes[:2]))
    p.add_function(Function("b", nodes[2:]))
    uids = [n.uid for n in nodes]
    assert len(set(uids)) == 5


def test_duplicate_function_rejected():
    p = Program(name="t")
    p.add_function(Function("main", []))
    with pytest.raises(ValueError):
        p.add_function(Function("main", []))


def test_missing_function_keyerror():
    p = Program(name="t")
    with pytest.raises(KeyError, match="no function"):
        p.function("nope")


def test_entry_function():
    p = Program(name="t", entry="start")
    p.add_function(Function("start", [Stmt("s", cost=0.0)]))
    assert p.entry_function.name == "start"


def test_node_count_counts_nested():
    p = Program(name="t")
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=2, body=[Stmt("a", 0.0), Branch(lambda c: True, [Stmt("b", 0.0)])]),
            ],
        )
    )
    assert p.node_count() == 4  # loop + a + branch + b


def test_register_nodes_assigns_uids():
    p = Program(name="t")
    p.add_function(Function("main", []))
    extra = Loop(trips=1, body=[Stmt("x", 0.0)])
    p.register_nodes([extra])
    assert extra.uid >= 0
    assert extra.body[0].uid >= 0


def test_commcall_defaults_and_name():
    c = CommCall(CommOp.ALLREDUCE, nbytes=8)
    assert c.name == "MPI_Allreduce"
    named = CommCall(CommOp.WAITALL, name="mpi_waitall_")
    assert named.name == "mpi_waitall_"
    assert named.source is None


def test_threadcall_children():
    body = [Stmt("x", 0.0)]
    tc = ThreadCall(ThreadOp.CREATE, body=body, count=2)
    assert list(tc.children()) == body
    assert ThreadCall(ThreadOp.JOIN).children() == []


def test_call_target_kinds():
    assert Call("f").target is CallTarget.USER
    assert Call("lib", target=CallTarget.EXTERNAL, cost=0.1).cost == 0.1


def test_evaluate_constant_and_callable():
    ctx = ExecContext(rank=3)
    assert evaluate(5, ctx) == 5
    assert evaluate(lambda c: c.rank * 2, ctx) == 6


def test_context_push_iteration():
    ctx = ExecContext(rank=1, nprocs=4)
    c2 = ctx.push_iteration(7)
    assert c2.iterations == (7,)
    assert c2.iteration == 7
    assert ctx.iterations == ()  # immutable parent
    assert ctx.iteration == 0
    c3 = c2.push_iteration(2)
    assert c3.iterations == (7, 2)
    assert c3.iteration == 2


def test_context_with_thread():
    ctx = ExecContext(rank=1, nprocs=4, params={"x": 1})
    t = ctx.with_thread(3, 8)
    assert t.thread == 3
    assert t.nthreads == 8
    assert t.rank == 1
    assert t.params is ctx.params  # shared run params


def test_branch_bodies():
    b = Branch(lambda c: True, then_body=[Stmt("a", 0)], else_body=[Stmt("b", 0)])
    assert len(list(b.children())) == 2

"""Unit tests for the discrete-event engine: MPI semantics, locks, threads."""

import pytest

from repro.ir.model import CommOp, ThreadOp
from repro.runtime.engine import (
    CollReq,
    Completion,
    DeadlockError,
    Engine,
    FinishReq,
    JoinReq,
    LockReq,
    RecvReq,
    SendReq,
    SpawnReq,
    WaitReq,
)
from repro.runtime.machine import MachineModel
from repro.runtime.tracer import Tracer

MACHINE = MachineModel()


def run_units(nprocs, unit_factories, machine=MACHINE):
    """unit_factories: list of (rank, thread, generator)."""
    tracer = Tracer()
    engine = Engine(nprocs, machine, tracer)
    for rank, thread, gen in unit_factories:
        engine.add_unit(rank, thread, gen)
    per_rank = engine.run()
    return per_rank, tracer


def test_blocking_send_recv_rendezvous():
    log = {}

    def sender():
        c = yield SendReq(t=1.0, dst=1, nbytes=1e6, blocking=True, path=("s",))
        log["send"] = c
        yield FinishReq(t=c.t)

    def receiver():
        c = yield RecvReq(t=3.0, src=0, nbytes=1e6, blocking=True, path=("r",))
        log["recv"] = c
        yield FinishReq(t=c.t)

    per_rank, tracer = run_units(2, [(0, 0, sender()), (1, 0, receiver())])
    xfer = MACHINE.transfer_time(1e6)
    # rendezvous: both complete at max(1, 3) + xfer (payload over threshold)
    assert log["send"].t == pytest.approx(3.0 + xfer)
    assert log["recv"].t == pytest.approx(3.0 + xfer)
    assert log["send"].wait == pytest.approx(2.0)  # waited for the receiver
    assert log["recv"].wait == pytest.approx(0.0)
    assert len(tracer.comm_events) == 1
    ev = tracer.comm_events[0]
    assert (ev.src_rank, ev.dst_rank) == (0, 1)
    assert per_rank[0] == pytest.approx(3.0 + xfer)


def test_eager_send_returns_early():
    log = {}

    def sender():
        c = yield SendReq(t=1.0, dst=1, nbytes=100, blocking=True, path=("s",))
        log["send"] = c
        yield FinishReq(t=c.t)

    def receiver():
        c = yield RecvReq(t=5.0, src=0, nbytes=100, blocking=True, path=("r",))
        log["recv"] = c
        yield FinishReq(t=c.t)

    run_units(2, [(0, 0, sender()), (1, 0, receiver())])
    # the eager sender does NOT wait for the late receiver
    assert log["send"].t == pytest.approx(1.0 + MACHINE.eager_copy_time(100))
    assert log["send"].wait == 0.0
    assert log["recv"].t > 5.0


def test_nonblocking_waitall():
    log = {}

    def left():
        yield SendReq(t=0.0, dst=1, nbytes=1024, blocking=False, label="s1", path=("s",))
        yield RecvReq(t=0.0, src=1, nbytes=1024, blocking=False, label="r1", path=("r",))
        c = yield WaitReq(t=2.0, labels=("s1", "r1"), path=("w",))
        log["left"] = c
        yield FinishReq(t=c.t)

    def right():
        yield SendReq(t=1.0, dst=0, nbytes=1024, blocking=False, label="s1", path=("s",))
        yield RecvReq(t=1.0, src=0, nbytes=1024, blocking=False, label="r1", path=("r",))
        c = yield WaitReq(t=1.0, labels=("s1", "r1"), path=("w",))
        log["right"] = c
        yield FinishReq(t=c.t)

    _, tracer = run_units(2, [(0, 0, left()), (1, 0, right())])
    assert log["left"].t >= 2.0
    assert log["right"].t >= log["right"].wait
    # irecv completions surface at the wait: 2 p2p events recorded
    assert len(tracer.comm_events) == 2
    assert all(ev.dst_path == ("w",) for ev in tracer.comm_events)


def test_wait_unknown_label_raises():
    def unit():
        yield WaitReq(t=0.0, labels=("nope",), path=("w",))

    with pytest.raises(ValueError, match="unknown request"):
        run_units(1, [(0, 0, unit())])


def test_collective_synchronizes_and_attributes_wait():
    log = {}

    def member(rank, arrive):
        def gen():
            c = yield CollReq(t=arrive, op=CommOp.ALLREDUCE, nbytes=8, path=(f"a{rank}",))
            log[rank] = c
            yield FinishReq(t=c.t)

        return gen()

    _, tracer = run_units(3, [(r, 0, member(r, t)) for r, t in ((0, 1.0), (1, 5.0), (2, 2.0))])
    cost = MACHINE.collective_time(CommOp.ALLREDUCE, 8, 3)
    for r in range(3):
        assert log[r].t == pytest.approx(5.0 + cost)
    assert log[0].wait == pytest.approx(4.0)
    assert log[1].wait == pytest.approx(0.0)
    assert log[2].wait == pytest.approx(3.0)
    ev = tracer.comm_events[0]
    assert ev.is_collective
    assert ev.src_rank == 1  # last arrival
    assert len(ev.participants) == 3


def test_collective_op_mismatch_raises():
    def a():
        yield CollReq(t=0.0, op=CommOp.ALLREDUCE, path=("x",))

    def b():
        yield CollReq(t=0.0, op=CommOp.BARRIER, path=("y",))

    with pytest.raises(DeadlockError, match="collective mismatch"):
        run_units(2, [(0, 0, a()), (1, 0, b())])


def test_deadlock_detected_on_unmatched_recv():
    def lonely():
        yield RecvReq(t=0.0, src=1, nbytes=8, blocking=True, path=("r",))

    def silent():
        yield FinishReq(t=0.0)

    with pytest.raises(DeadlockError, match="blocked forever"):
        run_units(2, [(0, 0, lonely()), (1, 0, silent())])


def test_send_invalid_rank_rejected():
    def unit():
        yield SendReq(t=0.0, dst=5, nbytes=8, blocking=True, path=("s",))

    with pytest.raises(ValueError, match="invalid rank"):
        run_units(2, [(0, 0, unit())])


def test_any_source_rejected():
    def unit():
        yield RecvReq(t=0.0, src=-1, nbytes=8, blocking=True, path=("r",))

    with pytest.raises(ValueError, match="ANY_SOURCE"):
        run_units(2, [(0, 0, unit())])


def test_fifo_matching_non_overtaking():
    """Two same-tag messages must match in posted order."""
    completions = []

    def sender():
        yield SendReq(t=0.0, dst=1, nbytes=10, blocking=False, label="a", path=("s1",))
        yield SendReq(t=1.0, dst=1, nbytes=20, blocking=False, label="b", path=("s2",))
        c = yield WaitReq(t=1.0, labels=("a", "b"), path=("w",))
        yield FinishReq(t=c.t)

    def receiver():
        c1 = yield RecvReq(t=0.0, src=0, nbytes=10, blocking=True, path=("r1",))
        completions.append(c1.t)
        c2 = yield RecvReq(t=c1.t, src=0, nbytes=20, blocking=True, path=("r2",))
        completions.append(c2.t)
        yield FinishReq(t=c2.t)

    _, tracer = run_units(2, [(0, 0, sender()), (1, 0, receiver())])
    assert completions[0] < completions[1]
    bytes_in_order = [ev.nbytes for ev in tracer.comm_events]
    assert bytes_in_order == [10, 20]


def test_self_send_matches():
    def unit():
        yield SendReq(t=0.0, dst=0, nbytes=64, blocking=False, label="s", path=("s",))
        c = yield RecvReq(t=0.0, src=0, nbytes=64, blocking=True, path=("r",))
        yield FinishReq(t=c.t)

    per_rank, _ = run_units(1, [(0, 0, unit())])
    assert per_rank[0] > 0


def test_lock_respects_simulated_time_order():
    """Regression: grants must follow simulated time, not processing order.

    Unit A requests the lock at t=10, unit B at t=1; the engine processes
    A first.  B must still get the lock first (no wait), and A must not
    wait behind a future grant.
    """
    log = {}

    def unit_a():
        c = yield LockReq(t=10.0, lock="m", hold=0.5, path=("a",))
        log["a"] = c
        yield FinishReq(t=c.t)

    def unit_b():
        c = yield LockReq(t=1.0, lock="m", hold=0.5, path=("b",))
        log["b"] = c
        yield FinishReq(t=c.t)

    _, tracer = run_units(1, [(0, 0, unit_a()), (0, 1, unit_b())])
    assert log["b"].wait == 0.0
    assert log["b"].t == pytest.approx(1.5 + MACHINE.lock_overhead)
    assert log["a"].wait == 0.0  # B released at 1.5, long before 10
    assert tracer.lock_events == []


def test_lock_contention_recorded():
    log = {}

    def holder():
        c = yield LockReq(t=0.0, lock="m", hold=2.0, path=("h",))
        log["h"] = c
        yield FinishReq(t=c.t)

    def waiter():
        c = yield LockReq(t=1.0, lock="m", hold=0.1, path=("w",))
        log["w"] = c
        yield FinishReq(t=c.t)

    _, tracer = run_units(1, [(0, 0, holder()), (0, 1, waiter())])
    assert log["w"].wait == pytest.approx(1.0 + MACHINE.lock_overhead)
    assert len(tracer.lock_events) == 1
    ev = tracer.lock_events[0]
    assert ev.holder_path == ("h",)
    assert ev.waiter_path == ("w",)
    assert ev.wait_time == pytest.approx(1.0 + MACHINE.lock_overhead)


def test_locks_serialize_holds():
    """N units each hold the lock h seconds; makespan >= N*h."""
    n, hold = 5, 0.3
    ends = []

    def unit(i):
        def gen():
            c = yield LockReq(t=0.0, lock="m", hold=hold, path=(f"u{i}",))
            ends.append(c.t)
            yield FinishReq(t=c.t)

        return gen()

    run_units(1, [(0, i, unit(i)) for i in range(n)])
    assert max(ends) >= n * hold
    # holds do not overlap: completions are distinct and spaced >= hold
    ends.sort()
    for a, b in zip(ends, ends[1:]):
        assert b - a >= hold - 1e-12


def test_spawn_join():
    log = {}

    def parent():
        def child_factory(tid, t_start):
            def child():
                yield FinishReq(t=t_start + 0.5)

            return child()

        c = yield SpawnReq(t=1.0, factories=[child_factory, child_factory], path=("sp",))
        log["spawned"] = c
        c = yield JoinReq(t=c.t, path=("j",))
        log["joined"] = c
        yield FinishReq(t=c.t)

    per_rank, _ = run_units(1, [(0, 0, parent())])
    assert log["joined"].t >= 1.5
    assert per_rank[0] == log["joined"].t


def test_join_without_children_is_immediate():
    def parent():
        c = yield JoinReq(t=2.0, path=("j",))
        yield FinishReq(t=c.t)

    per_rank, _ = run_units(1, [(0, 0, parent())])
    assert per_rank[0] == pytest.approx(2.0)


def test_duplicate_unit_rejected():
    engine = Engine(1, MACHINE, Tracer())

    def g():
        yield FinishReq(t=0.0)

    engine.add_unit(0, 0, g())
    with pytest.raises(ValueError, match="duplicate"):
        engine.add_unit(0, 0, g())

"""Golden regression fixtures for the built-in paradigms.

Normalized report outputs for the ``mpi_profiler``, ``scalability``,
and ``critical_path`` paradigms are committed under ``tests/goldens/``;
these tests regenerate the same normalized text and compare it verbatim
so that scheduler (and future) refactors can't silently change analysis
*results* while keeping tests green.  The PerFlowGraph-backed paradigm
is additionally run under ``jobs=4`` and must match the same golden —
the serial-equivalence contract, checked against real pipelines.

The simulated runtime is deterministic, so exact text comparison is
sound; floats are rounded to 6 decimals to stay stable across numpy
versions.  To regenerate after an *intentional* analysis change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_goldens.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.apps import microbench, registry
from repro.dataflow.api import PerFlow
from repro.paradigms import (
    critical_path_paradigm,
    mpi_profiler_paradigm,
    scalability_analysis_paradigm,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("GOLDEN_REGEN") == "1"


def _fmt(x: float) -> str:
    return f"{round(float(x), 6):.6f}"


def _check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden {path.name}; run with GOLDEN_REGEN=1 to create it"
    )
    assert text == path.read_text(encoding="utf-8"), (
        f"paradigm output diverged from {path.name}; if the analysis change "
        "is intentional, regenerate with GOLDEN_REGEN=1"
    )


# ----------------------------------------------------------------------
# normalized renderings (stable field order, rounded floats)
# ----------------------------------------------------------------------


def _render_mpi_rows(rows) -> str:
    lines = [f"rows {len(rows)}"]
    for r in rows:
        lines.append(
            f"{r.name} site={r.site} time={_fmt(r.time)} app_pct={_fmt(r.app_pct)} "
            f"count={r.count} bytes={_fmt(r.total_bytes)} "
            f"rank_time={_fmt(r.min_rank_time)}/{_fmt(r.mean_rank_time)}/{_fmt(r.max_rank_time)}"
        )
    return "\n".join(lines) + "\n"


def _render_vset(label, V, attrs=("debug-info", "time")) -> list:
    lines = [f"{label} {len(V)}"]
    for v in V:
        parts = [str(v.name)]
        for attr in attrs:
            val = v[attr]
            parts.append(_fmt(val) if isinstance(val, float) else str(val))
        lines.append("  " + " ".join(parts))
    return lines


def _render_scalability(res) -> str:
    lines = []
    lines += _render_vset("V_hot", res.V_hot)
    lines += _render_vset("V_imb", res.V_imb)
    lines += _render_vset("V_bt", res.V_bt)
    lines.append(f"E_bt {len(res.E_bt)}")
    lines.append("roots " + " ".join(str(v.name) for v in res.roots))
    return "\n".join(lines) + "\n"


def _render_critical_path(res) -> str:
    lines = [f"weight {_fmt(res.weight)}", f"path {len(res.summary)}"]
    for name, proc, thread, weight in res.summary:
        lines.append(f"  {name} p{proc} t{thread} {_fmt(weight)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# fixtures: one simulated run set, shared across the module
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def micro_ctx():
    pflow = PerFlow()
    prog = microbench.build()
    return pflow, {
        4: pflow.run(bin=prog, nprocs=4, nthreads=4),
        16: pflow.run(bin=prog, nprocs=16, nthreads=4),
    }


# ----------------------------------------------------------------------
# goldens
# ----------------------------------------------------------------------


def test_golden_mpi_profiler_microbench(micro_ctx):
    pflow, pags = micro_ctx
    serial = mpi_profiler_paradigm(pflow, pags[4], top=10, jobs=1)
    parallel = mpi_profiler_paradigm(pflow, pags[4], top=10, jobs=4)
    assert _render_mpi_rows(parallel) == _render_mpi_rows(serial)
    _check_golden("mpi_profiler_microbench.txt", _render_mpi_rows(serial))


def test_golden_mpi_profiler_cg():
    """The microbench has no MPI calls; CG exercises non-trivial rows."""
    pflow = PerFlow()
    pag = pflow.run(bin=registry("W")["cg"](), nprocs=8)
    serial = mpi_profiler_paradigm(pflow, pag, top=10, jobs=1)
    parallel = mpi_profiler_paradigm(pflow, pag, top=10, jobs=4)
    assert _render_mpi_rows(parallel) == _render_mpi_rows(serial)
    assert len(serial) > 0
    _check_golden("mpi_profiler_cg.txt", _render_mpi_rows(serial))


def test_golden_scalability_microbench(micro_ctx):
    pflow, pags = micro_ctx
    res = scalability_analysis_paradigm(
        pflow, pags[4], pags[16], top=5, max_ranks=8
    )
    _check_golden("scalability_microbench.txt", _render_scalability(res))


def test_golden_mpi_profiler_microbench_process_backend(micro_ctx):
    """backend="process" must reproduce the committed golden byte-equal:
    the shared-memory transport cannot perturb analysis results."""
    pflow, pags = micro_ctx
    rows = mpi_profiler_paradigm(
        pflow, pags[4], top=10, jobs=2, backend="process"
    )
    _check_golden("mpi_profiler_microbench.txt", _render_mpi_rows(rows))


def test_golden_mpi_profiler_cg_process_backend():
    pflow = PerFlow()
    pag = pflow.run(bin=registry("W")["cg"](), nprocs=8)
    rows = mpi_profiler_paradigm(pflow, pag, top=10, jobs=2, backend="process")
    assert len(rows) > 0
    _check_golden("mpi_profiler_cg.txt", _render_mpi_rows(rows))


def test_golden_scalability_microbench_process_backend(micro_ctx):
    """The scalability graph's impure stages pin to the coordinator and
    its fresh difference PAG degrades downstream passes to inline runs —
    but results must stay byte-identical to the golden either way."""
    pflow, pags = micro_ctx
    res = scalability_analysis_paradigm(
        pflow, pags[4], pags[16], top=5, max_ranks=8, jobs=2, backend="process"
    )
    _check_golden("scalability_microbench.txt", _render_scalability(res))


def test_golden_critical_path_microbench(micro_ctx):
    pflow, pags = micro_ctx
    res = critical_path_paradigm(
        pflow, pags[4], max_ranks=4, expand_threads=True
    )
    _check_golden("critical_path_microbench.txt", _render_critical_path(res))

"""Tests for the interactive analysis mode (§4.5).

Each test builds a fresh PAG: pass annotations (``imbalance`` etc.) are
persistent vertex properties, so sessions must not share graphs.
"""

import pytest

from repro.apps import vite, zeusmp
from repro.dataflow.api import PerFlow
from repro.dataflow.interactive import InteractiveSession, Suggestion
from repro.pag.sets import VertexSet


def fresh_zmp_session():
    pflow = PerFlow()
    pag = pflow.run(bin=zeusmp.build(steps=2), nprocs=16)
    return InteractiveSession(pflow, pag)


def test_initial_suggestion_is_hotspot():
    sess = fresh_zmp_session()
    s = sess.suggest()
    assert s.pass_name == "hotspot_detection"
    out = s.run()
    assert len(out) > 0
    assert sess.steps[0].pass_name == "hotspot_detection"


def test_comm_hotspots_lead_to_imbalance_analysis():
    sess = fresh_zmp_session()
    sess.start(n=30)
    s = sess.suggest()
    assert s.pass_name == "imbalance_analysis"
    out = s.run()
    assert sess._ran("imbalance_analysis")
    assert any(v["imbalance"] for v in out)


def test_imbalance_leads_to_backtracking():
    sess = fresh_zmp_session()
    sess.start(n=30)
    first = sess.suggest()
    assert first.pass_name == "imbalance_analysis"
    first.run()
    s = sess.suggest()
    assert s.pass_name == "backtracking_analysis"
    V_bt, _E_bt = s.run()
    assert len(V_bt) > 0


def test_lock_symbols_lead_to_contention():
    pflow = PerFlow()
    pag = pflow.run(bin=vite.build(phases=1), nprocs=2, nthreads=6)
    sess = InteractiveSession(pflow, pag)
    sess.start(n=30)
    s = sess.suggest()
    # Vite's hotspots contain allocator symbols -> contention directly
    assert s.pass_name == "contention_detection"
    V_cont, E_cont = s.run()
    assert sess._ran("contention_detection")
    assert len(V_cont) >= 0  # pattern search executed (embeddings optional)


def test_differential_suggested_with_second_run():
    pflow = PerFlow()
    prog = zeusmp.build(steps=2)
    pag_a = pflow.run(bin=prog, nprocs=16)
    pag_b = pflow.run(bin=prog, nprocs=16, params={"optimized": True})
    sess = InteractiveSession(pflow, pag_a, pag_other=pag_b)
    sess.record("custom", VertexSet([]))  # neutral output: no other rule fires
    s = sess.suggest()
    assert s.pass_name == "differential_analysis"
    out = s.run()
    assert len(out) == pag_a.num_vertices


def test_widen_when_no_signal():
    sess = fresh_zmp_session()
    # a synthetic quiet output: nothing comm/locky/imbalanced/waity
    quiet = VertexSet([sess.pag.vertex(0)])
    sess.pag.vertex(0).properties.pop("imbalance", None)
    sess.record("custom", quiet)
    # root vertex has wait < 50% of time on this app -> widen
    s = sess.suggest()
    assert s.pass_name in ("hotspot_detection", "breakdown_analysis")
    s.run()
    assert len(sess.steps) == 2


def test_non_set_output_suggests_report():
    sess = fresh_zmp_session()
    sess.start()
    sess.record("backtracking_analysis", (VertexSet([]), VertexSet([])))
    s = sess.suggest()
    assert s.pass_name == "report"


def test_transcript():
    sess = fresh_zmp_session()
    sess.start()
    text = sess.transcript()
    assert "interactive session" in text
    assert "hotspot_detection" in text


def test_suggestion_str():
    assert str(Suggestion("x", "because")) == "x: because"

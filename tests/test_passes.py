"""Unit tests for the built-in pass library."""

import numpy as np
import pytest

from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import CallKind, VertexLabel
from repro.passes import (
    backtracking_analysis,
    breakdown_analysis,
    causal_analysis,
    comm_filter,
    contention_detection,
    critical_path_analysis,
    default_contention_pattern,
    differential_analysis,
    filter_set,
    format_table,
    hotspot_detection,
    imbalance_analysis,
    io_filter,
    Report,
    to_dot,
)


def metric_pag(times, names=None):
    g = PAG("m")
    for i, t in enumerate(times):
        name = names[i] if names else f"v{i}"
        g.add_vertex(VertexLabel.INSTRUCTION, name, properties={"time": t})
    for i in range(1, len(times)):
        g.add_edge(0, i, EdgeLabel.INTRA_PROCEDURAL)
    return g


# -------------------------------------------------------------- hotspot/filter
def test_hotspot_detection_listing3():
    g = metric_pag([1.0, 9.0, 5.0, 7.0])
    hot = hotspot_detection(g.vs, metric="time", n=2)
    assert [v.name for v in hot] == ["v1", "v3"]


def test_hotspot_other_metric():
    g = metric_pag([1.0, 2.0])
    g.vertex(0)["l1_misses"] = 100.0
    g.vertex(1)["l1_misses"] = 5.0
    assert hotspot_detection(g.vs, metric="l1_misses", n=1)[0].id == 0


def test_filters():
    g = PAG()
    g.add_vertex(VertexLabel.CALL, "MPI_Send", CallKind.COMM)
    g.add_vertex(VertexLabel.CALL, "mpi_waitall_", CallKind.COMM)
    g.add_vertex(VertexLabel.CALL, "istream::read", CallKind.EXTERNAL)
    g.add_vertex(VertexLabel.LOOP, "loop_1")
    assert len(comm_filter(g.vs)) == 2
    assert [v.name for v in io_filter(g.vs)] == ["istream::read"]
    assert len(filter_set(g.vs, label=VertexLabel.LOOP)) == 1


# -------------------------------------------------------------- differential
def test_differential_analysis_listing4():
    g1 = metric_pag([10.0, 5.0, 1.0])
    g2 = metric_pag([9.0, 1.0, 1.0])
    diff = differential_analysis(g1.vs, g2.vs)
    times = {v.name: v["time"] for v in diff}
    assert times["v1"] == pytest.approx(4.0)
    assert times["v2"] == pytest.approx(0.0)
    # Fig. 7's point: v1 is not the hotspot in either run but dominates the diff
    assert hotspot_detection(diff, n=1)[0].name == "v1"


def test_differential_min_delta():
    g1 = metric_pag([10.0, 5.0])
    g2 = metric_pag([9.5, 1.0])
    diff = differential_analysis(g1.vs, g2.vs, min_delta=1.0)
    assert [v.name for v in diff] == ["v1"]


def test_differential_empty_inputs():
    assert len(differential_analysis(VertexSet([]), VertexSet([]))) == 0


# -------------------------------------------------------------- imbalance
def test_imbalance_per_rank_mode():
    g = metric_pag([10.0, 8.0])
    g.vertex(0)["time_per_rank"] = np.array([1.0, 1.0, 1.0, 7.0])
    g.vertex(1)["time_per_rank"] = np.array([2.0, 2.0, 2.0, 2.0])
    out = imbalance_analysis(g.vs, threshold=1.5)
    assert [v.name for v in out] == ["v0"]
    assert out[0]["imbalance"] == pytest.approx(2.8)
    assert out[0]["imbalanced_ranks"] == [3]


def test_imbalance_ignores_negligible_vertices():
    g = metric_pag([100.0, 0.001])
    g.vertex(0)["time_per_rank"] = np.array([50.0, 50.0])
    g.vertex(1)["time_per_rank"] = np.array([0.001, 0.0])
    out = imbalance_analysis(g.vs, threshold=1.5, min_time_fraction=0.01)
    assert len(out) == 0


def test_imbalance_instance_mode():
    g = PAG()
    for rank, t in enumerate([1.0, 1.0, 5.0, 1.0]):
        g.add_vertex(
            VertexLabel.CALL,
            "MPI_Wait",
            CallKind.COMM,
            {"time": t, "debug-info": "x.c:10", "process": rank},
        )
    out = imbalance_analysis(g.vs, threshold=1.5)
    assert len(out) == 1
    assert out[0]["process"] == 2


# -------------------------------------------------------------- breakdown
def test_breakdown_message_size_imbalance():
    g = metric_pag([4.0])
    v = g.vertex(0)
    v["wait"] = 2.0
    v["bytes_per_rank"] = np.array([100.0, 100.0, 10000.0, 100.0])
    out = breakdown_analysis(g.vs)
    assert out[0]["breakdown"]["cause"] == "message-size imbalance"


def test_breakdown_load_imbalance():
    g = metric_pag([4.0])
    v = g.vertex(0)
    v["wait"] = 3.0
    v["bytes_per_rank"] = np.array([100.0, 100.0, 100.0, 100.0])
    v["wait_per_rank"] = np.array([0.0, 0.1, 2.8, 0.1])
    out = breakdown_analysis(g.vs)
    bd = out[0]["breakdown"]
    assert bd["cause"] == "load imbalance before communication"
    assert bd["wait"] == pytest.approx(3.0)
    assert bd["transfer"] == pytest.approx(1.0)


def test_breakdown_transfer_bound():
    g = metric_pag([4.0])
    g.vertex(0)["wait"] = 0.1
    out = breakdown_analysis(g.vs)
    assert out[0]["breakdown"]["cause"] == "transfer-bound"


# -------------------------------------------------------------- causal / LCA
def causal_pag():
    r"""cause -> w1, cause -> w2 (two buggy vertices share an ancestor)."""
    g = PAG("causal")
    g.add_vertex(VertexLabel.LOOP, "cause", properties={"debug-info": "c:1"})
    g.add_vertex(VertexLabel.CALL, "w1", CallKind.COMM, {"debug-info": "c:2"})
    g.add_vertex(VertexLabel.CALL, "w2", CallKind.COMM, {"debug-info": "c:3"})
    g.add_edge(0, 1, EdgeLabel.INTER_PROCESS)
    g.add_edge(0, 2, EdgeLabel.INTER_PROCESS)
    return g


def test_causal_analysis_listing5():
    g = causal_pag()
    buggy = VertexSet([g.vertex(1), g.vertex(2)])
    causes, paths = causal_analysis(buggy)
    assert [v.name for v in causes] == ["cause"]
    assert len(paths) == 2
    assert len(causes[0]["causes"]) == 2


def test_causal_restrict_to_input():
    g = causal_pag()
    buggy = VertexSet([g.vertex(1), g.vertex(2)])
    causes, _ = causal_analysis(buggy, restrict_to_input=True)
    assert len(causes) == 0  # 'cause' is not in the input set


def test_causal_empty():
    causes, paths = causal_analysis(VertexSet([]))
    assert len(causes) == 0 and len(paths) == 0


# -------------------------------------------------------------- contention
def contention_pag():
    """A hub with 2 in- and 2 out- inter-thread edges (Listing 6 shape)."""
    g = PAG("cont")
    names = ["a", "b", "hub", "d", "e"]
    for i, n in enumerate(names):
        g.add_vertex(VertexLabel.CALL, n, CallKind.THREAD, {"debug-info": f"t:{i}", "thread": i})
    g.add_edge(0, 2, EdgeLabel.INTER_THREAD, properties={"wait_time": 0.1})
    g.add_edge(1, 2, EdgeLabel.INTER_THREAD, properties={"wait_time": 0.2})
    g.add_edge(2, 3, EdgeLabel.INTER_THREAD, properties={"wait_time": 0.3})
    g.add_edge(2, 4, EdgeLabel.INTER_THREAD, properties={"wait_time": 0.4})
    return g


def test_contention_detection_listing6():
    g = contention_pag()
    V_ebd, E_ebd = contention_detection(VertexSet([g.vertex(2)]))
    assert len(V_ebd) == 5
    assert len(E_ebd) == 4
    assert all(v["contention_hub"] == "hub@t:2" for v in V_ebd)


def test_contention_no_pattern_without_interthread_edges():
    g = metric_pag([1.0, 2.0, 3.0])
    V_ebd, E_ebd = contention_detection(g.vs)
    assert len(V_ebd) == 0


def test_default_pattern_shape():
    pat = default_contention_pattern()
    assert pat.num_vertices == 5


# -------------------------------------------------------------- backtracking
def backtrack_pag():
    r"""flow: root -> loop -> comm; cross edge: remote -> comm."""
    g = PAG("bt")
    g.add_vertex(VertexLabel.FUNCTION, "root")
    g.add_vertex(VertexLabel.LOOP, "loop_1")
    g.add_vertex(VertexLabel.CALL, "MPI_Waitall", CallKind.COMM)
    g.add_vertex(VertexLabel.INSTRUCTION, "remote_work")
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(1, 2, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(3, 2, EdgeLabel.INTER_PROCESS, properties={"wait_time": 1.0})
    return g


def test_backtracking_follows_comm_edge_at_mpi_vertex():
    g = backtrack_pag()
    V_bt, E_bt = backtracking_analysis(VertexSet([g.vertex(2)]))
    names = [v.name for v in V_bt]
    assert names[0] == "MPI_Waitall"
    assert "remote_work" in names
    roots = [v for v in V_bt if v["backtrack_root"]]
    assert [v.name for v in roots] == ["remote_work"]
    assert any(e.label is EdgeLabel.INTER_PROCESS for e in E_bt)


def test_backtracking_collective_semantics():
    """Flow-reached collectives stop the walk; a collective reached over a
    communication edge is the late participant's instance, and the walk
    continues into the code that made it late."""
    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "remote_pre")
    g.add_vertex(VertexLabel.CALL, "MPI_Allreduce", CallKind.COMM)  # late rank
    g.add_vertex(VertexLabel.CALL, "MPI_Wait", CallKind.COMM)  # victim
    g.add_vertex(VertexLabel.INSTRUCTION, "local_pre")
    g.add_vertex(VertexLabel.CALL, "MPI_Barrier", CallKind.COMM)
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)  # remote flow
    g.add_edge(1, 2, EdgeLabel.INTER_PROCESS, properties={"wait_time": 0.5})
    g.add_edge(3, 4, EdgeLabel.INTRA_PROCEDURAL)  # local flow into barrier
    g.add_edge(4, 2, EdgeLabel.INTRA_PROCEDURAL)

    # comm arrival: Wait -> Allreduce (crossed) -> remote_pre (continued)
    V_bt, _ = backtracking_analysis(VertexSet([g.vertex(2)]))
    names = [v.name for v in V_bt]
    assert "MPI_Allreduce" in names
    assert "remote_pre" in names

    # flow arrival: a walk that meets MPI_Barrier along its own flow stops
    g2 = PAG()
    g2.add_vertex(VertexLabel.INSTRUCTION, "before")
    g2.add_vertex(VertexLabel.CALL, "MPI_Barrier", CallKind.COMM)
    g2.add_vertex(VertexLabel.INSTRUCTION, "after")
    g2.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    g2.add_edge(1, 2, EdgeLabel.INTRA_PROCEDURAL)
    V_bt2, _ = backtracking_analysis(VertexSet([g2.vertex(2)]))
    names2 = [v.name for v in V_bt2]
    assert "MPI_Barrier" in names2
    assert "before" not in names2


def test_backtracking_deduplicates_shared_paths():
    g = backtrack_pag()
    V_bt, _ = backtracking_analysis(VertexSet([g.vertex(2), g.vertex(2)]))
    ids = [v.id for v in V_bt]
    assert len(ids) == len(set(ids))


# -------------------------------------------------------------- critical path
def test_critical_path_pass():
    g = backtrack_pag()
    g.vertex(0)["time"] = 1.0
    g.vertex(1)["time"] = 2.0
    g.vertex(2)["time"] = 0.5
    g.vertex(3)["time"] = 10.0
    vs, es, w = critical_path_analysis(g.vs)
    assert [v.name for v in vs] == ["remote_work", "MPI_Waitall"]
    assert all(v["on_critical_path"] for v in vs)
    assert w == pytest.approx(10.5)


# -------------------------------------------------------------- report
def test_format_table_and_report():
    g = metric_pag([1.5, 2.5], names=["alpha", "beta"])
    table = format_table(g.vs, ["name", "time"])
    assert "alpha" in table and "2.5" in table
    rep = Report("t").add_set(g.vs, ["name", "time"], heading="hot")
    text = rep.to_text()
    assert "=== t ===" in text and "## hot" in text


def test_report_edge_section():
    g = backtrack_pag()
    rep = Report().add_set(EdgeSet(list(g.edges())), [])
    assert "->" in rep.to_text()


def test_to_dot_highlights_and_styles():
    g = backtrack_pag()
    g.vertex(3)["time"] = 5.0
    g.vertex(3)["process"] = 2
    dot = to_dot(g.vertices(), g.edges(), highlight=[g.vertex(3)])
    assert "digraph" in dot
    assert "penwidth=3" in dot
    assert 'color="red"' in dot  # inter-process edge style
    assert "p2" in dot

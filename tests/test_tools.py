"""Tests for the baseline tool analogs (§5.3's comparison subjects)."""

import pytest

from repro.apps import zeusmp
from repro.runtime.executor import run_program
from repro.tools import (
    SCALANA_SOURCE_LINES,
    hpctoolkit_profile,
    mpip_profile,
    scalana_analyze,
    scalasca_trace,
)
from repro.tools.hpctoolkit import scalability_issues

from tests.conftest import make_ring_program


@pytest.fixture(scope="module")
def zmp_runs():
    prog = zeusmp.build(steps=2)
    return prog, run_program(prog, nprocs=8), run_program(prog, nprocs=64)


# ------------------------------------------------------------------- mpiP
def test_mpip_rows_and_totals(zmp_runs):
    prog, r8, _ = zmp_runs
    prof = mpip_profile(prog, 8, run=r8)
    assert prof.nprocs == 8
    assert prof.rows
    for row in prof.rows:
        assert row.count > 0
        assert 0 <= row.app_pct <= 100
    assert sum(r.app_pct for r in prof.rows) < 100


def test_mpip_allreduce_share_grows_with_scale(zmp_runs):
    prog, r8, r64 = zmp_runs
    small = mpip_profile(prog, 8, run=r8).pct_of("mpi_allreduce_")
    large = mpip_profile(prog, 64, run=r64).pct_of("mpi_allreduce_")
    assert large > small  # the §5.3 observation (0.06% -> 7.93%)


def test_mpip_report_text(zmp_runs):
    prog, r8, _ = zmp_runs
    text = mpip_profile(prog, 8, run=r8).to_text()
    assert "mpiP profile" in text
    assert "mpi_waitall_" in text


def test_mpip_overhead_light(zmp_runs):
    prog, r8, _ = zmp_runs
    assert mpip_profile(prog, 8, run=r8).overhead_pct < 10.0


# ------------------------------------------------------------- HPCToolkit
def test_hpctoolkit_cct_structure(zmp_runs):
    prog, r8, _ = zmp_runs
    prof = hpctoolkit_profile(prog, 8, run=r8)
    nodes = list(prof.root.walk())
    assert len(nodes) > 10
    hot = prof.hotspots(5)
    assert hot
    assert hot == sorted(hot, key=lambda nd: -nd.time)
    # children are reachable from the root and named
    assert all(nd.name for nd in nodes[1:])


def test_hpctoolkit_flags_scaling_issues_without_causes(zmp_runs):
    prog, r8, r64 = zmp_runs
    small = hpctoolkit_profile(prog, 8, run=r8)
    large = hpctoolkit_profile(prog, 64, run=r64)
    issues = scalability_issues(small, large)
    assert issues
    names = {n for n, _g in issues}
    # the waiting MPI calls are flagged...
    assert names & {"mpi_waitall_", "mpi_allreduce_"}
    # ...but the output is (name, growth) only: no causal edges (the
    # §5.3 point about needing analysis skills to find root causes)
    assert all(isinstance(g, float) for _n, g in issues)


# --------------------------------------------------------------- Scalasca
def test_scalasca_costs_dwarf_perflow(zmp_runs):
    prog, _r8, r64 = zmp_runs
    from repro.pag.views import build_top_down_view
    from repro.pag.serialize import storage_size
    from repro.runtime.sampler import dynamic_overhead_percent

    tr = scalasca_trace(prog, 64, run=r64)
    assert tr.overhead_pct > 30
    assert tr.storage_gb > 1
    td, _ = build_top_down_view(prog, r64)
    assert tr.overhead_pct > 10 * dynamic_overhead_percent(r64)
    assert tr.storage_bytes > 100 * storage_size(td)


def test_scalasca_finds_wait_states_and_causes(zmp_runs):
    prog, r8, _ = zmp_runs
    tr = scalasca_trace(prog, 8, run=r8)
    assert tr.wait_states
    top = tr.wait_states[0]
    assert top.kind in ("late-sender", "wait-at-collective")
    assert top.cause_rank != top.victim_rank or top.kind == "late-sender"
    assert top.wait_time > 0


# ---------------------------------------------------------------- ScalAna
def test_scalana_finds_scaling_loss_and_roots(zmp_runs):
    prog, r8, r64 = zmp_runs
    rep = scalana_analyze(prog, 8, 64, runs=(r8, r64), max_ranks=16)
    assert rep.scaling_loss
    loss_names = {n for n, _d, _l in rep.scaling_loss}
    assert loss_names & {"nudt", "mpi_waitall_", "mpi_allreduce_", "loop_1"}
    assert rep.root_causes
    assert SCALANA_SOURCE_LINES > 1000  # "thousands of lines"


def test_tools_accept_fresh_runs():
    prog = make_ring_program()
    prof = mpip_profile(prog, 4)
    assert prof.nprocs == 4
    tr = scalasca_trace(prog, 4)
    assert tr.elapsed > 0

"""Tests for the built-in paradigms (§4.4) on the modelled applications."""

import pytest

from repro.apps import microbench, npb, vite, zeusmp
from repro.dataflow.api import PerFlow
from repro.paradigms import (
    branching_diagnosis_paradigm,
    communication_analysis_paradigm,
    critical_path_paradigm,
    loop_causal_paradigm,
    mpi_profiler_paradigm,
    scalability_analysis_paradigm,
)


@pytest.fixture(scope="module")
def pflow():
    return PerFlow()


# ------------------------------------------------------------- MPI profiler
def test_mpi_profiler_on_cg(pflow):
    """Appendix A.3.1: the MPI profiler paradigm on NPB-CG, 8 ranks."""
    pag = pflow.run(bin=npb.build_cg("S", iterations=3), nprocs=8)
    rows = mpi_profiler_paradigm(pflow, pag)
    assert rows, "CG must show MPI activity"
    assert rows == sorted(rows, key=lambda r: -r.time)
    names = {r.name for r in rows}
    assert "MPI_Sendrecv" in names or "MPI_Allreduce" in names
    for r in rows:
        assert 0 <= r.app_pct <= 100
        assert r.min_rank_time <= r.mean_rank_time <= r.max_rank_time


# ------------------------------------------------------------- communication
def test_communication_analysis_fig2(pflow):
    prog = zeusmp.build(steps=2)
    pag = pflow.run(bin=prog, nprocs=16)
    V_imb, V_bd, report = communication_analysis_paradigm(pflow, pag)
    assert len(V_imb) >= 1
    names = {v.name for v in V_imb}
    assert names & {"mpi_waitall_", "mpi_allreduce_"}
    assert all(v["breakdown"] for v in V_bd)
    assert "communication analysis" in report.to_text()


# ------------------------------------------------------------- scalability
def test_scalability_paradigm_finds_zeusmp_roots(pflow):
    """Case study A at test scale: diff 4 vs 32 ranks, backtrack causes."""
    prog = zeusmp.build(steps=2)
    pag_small = pflow.run(bin=prog, nprocs=4)
    pag_large = pflow.run(bin=prog, nprocs=32)
    res = scalability_analysis_paradigm(pflow, pag_small, pag_large, max_ranks=32)
    assert len(res.V_diff) == pag_large.num_vertices
    assert len(res.V_hot) >= 1
    assert len(res.V_bt) >= 1
    assert len(res.E_bt) >= 1
    # the walk traverses inter-process edges (propagation across ranks)
    from repro.pag.edge import EdgeLabel

    assert any(e.label is EdgeLabel.INTER_PROCESS for e in res.E_bt)
    # the imbalanced bvald loop's rank instances are on the paths
    names_on_path = {v.name for v in res.V_bt}
    assert {"mpi_waitall_", "mpi_allreduce_"} & names_on_path
    assert res.roots, "backtracking must surface root candidates"


def test_scalability_paradigm_loc_claim():
    """§5.3: the paradigm fits in a few dozen lines (paper: 27)."""
    import inspect

    from repro.paradigms import scalability as mod

    src = inspect.getsource(mod.scalability_analysis_paradigm)
    code_lines = [
        ln
        for ln in src.splitlines()
        if ln.strip() and not ln.strip().startswith(("#", '"""', "'''"))
    ]
    # exclude the docstring block
    body = inspect.getsource(mod.scalability_analysis_paradigm)
    assert len(code_lines) < 45


# ------------------------------------------------------------- critical path
def test_critical_path_through_heaviest_thread(pflow):
    """Appendix A.3.2: critical path on the pthreads micro-benchmark."""
    pag = pflow.run(bin=microbench.build(), nprocs=1, nthreads=4, params={"nthreads": 4})
    res = critical_path_paradigm(pflow, pag, expand_threads=True)
    assert res.weight > 0
    hot_threads = [t for (_n, _p, t, w) in res.summary if w > 0.01]
    # spawned threads are numbered 1..4; the ramp makes thread 4 heaviest
    assert 4 in hot_threads


# ------------------------------------------------------------- LAMMPS loop
def test_loop_causal_paradigm_fig11(pflow):
    from repro.apps import lammps

    prog = lammps.build(steps=2)
    pflow_l = PerFlow(machine=lammps.MACHINE)
    pag = pflow_l.run(bin=prog, nprocs=16)
    res = loop_causal_paradigm(pflow_l, pag, max_ranks=16)
    assert len(res.V_hot) >= 1
    comm_names = {v.name for v in res.V_comm}
    assert comm_names <= {"MPI_Send", "MPI_Wait", "MPI_Irecv", "MPI_Sendrecv", "MPI_Allreduce"}
    assert len(res.V_causes) >= 1
    assert "loop causal analysis" in res.report.to_text()


# ------------------------------------------------------------- Vite branching
def test_branching_diagnosis_fig14(pflow):
    prog = vite.build(phases=1)
    pflow_v = PerFlow()
    pag2 = pflow_v.run(bin=prog, nprocs=4, nthreads=2)
    pag8 = pflow_v.run(bin=prog, nprocs=4, nthreads=8)
    res = branching_diagnosis_paradigm(pflow_v, pag2, pag8, max_ranks=4)
    # differential flags the allocator vertices that grew with threads
    diff_names = {v.name for v in res.V_diff}
    assert diff_names & {"_M_realloc_insert", "allocate", "_M_emplace", "deallocate", "omp_join"}
    # contention embeddings found around them (Fig. 16)
    assert len(res.V_contention) >= 5
    assert len(res.E_contention) >= 4
    from repro.pag.edge import EdgeLabel

    assert all(e.label is EdgeLabel.INTER_THREAD for e in res.E_contention)


# ------------------------------------------------------------- differential
def test_differential_paradigm_finds_planted_regression(pflow):
    """Fig. 7's scenario: a non-hotspot vertex regresses between inputs."""
    from repro.paradigms import differential_paradigm
    from repro.ir.model import CommCall, CommOp, Function, Loop, Program, Stmt

    def build():
        p = Program(name="regress")
        p.add_function(
            Function(
                "main",
                [
                    Stmt("big_kernel", cost=0.5, line=10),
                    Loop(
                        trips=2,
                        line=20,
                        body=[
                            Stmt(
                                "small_phase",
                                # regresses 4x under the "slow" parameter
                                cost=lambda ctx: 0.02 * (4 if ctx.params.get("slow") else 1),
                                line=21,
                            )
                        ],
                    ),
                    CommCall(CommOp.ALLREDUCE, nbytes=8, line=30),
                ],
                source_file="regress.c",
                line=9,
            )
        )
        return p

    pf = PerFlow()
    pag_old = pf.run(bin=build(), nprocs=4)
    pag_new = pf.run(bin=build(), nprocs=4, params={"slow": True})
    rep = differential_paradigm(pf, pag_new, pag_old)
    assert rep.total_delta > 0
    # the regression is the small phase, not the (unchanged) hotspot
    assert rep.regressions[0].name == "small_phase"
    assert all(v.name != "big_kernel" for v in rep.regressions)
    assert rep.regressions[0]["delta_share"] > 0.5

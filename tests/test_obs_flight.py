"""Tests for repro.obs.flight: the always-on bounded flight recorder."""

import json
import os
import signal
import threading
import time

import pytest

from repro.cli import EXIT_OK, main
from repro.obs import flight as obs_flight
from repro.obs import trace as obs_trace
from repro.obs.flight import KIND_BEGIN, KIND_END, KIND_LOG, FlightRecorder
from repro.obs.log import get_logger
from repro.obs.trace import span


# ----------------------------------------------------------------------
# the ring itself
# ----------------------------------------------------------------------
def test_ring_wraps_around_keeping_newest():
    fl = FlightRecorder(capacity=8)
    for i in range(20):
        fl.begin(f"s{i}", tid=1)
    assert len(fl) == 8
    assert fl.total == 20
    assert fl.dropped == 12
    events = fl.events()
    # Oldest retained first, contiguous sequence numbers 12..19.
    assert [e["seq"] for e in events] == list(range(12, 20))
    assert [e["name"] for e in events] == [f"s{i}" for i in range(12, 20)]
    assert all(e["kind"] == KIND_BEGIN for e in events)


def test_ring_before_wrap_returns_all():
    fl = FlightRecorder(capacity=16)
    fl.begin("a", tid=7)
    fl.end("a", tid=7)
    fl.log("repro.test", "hello", tid=7)
    assert len(fl) == 3 and fl.dropped == 0
    kinds = [e["kind"] for e in fl.events()]
    assert kinds == [KIND_BEGIN, KIND_END, KIND_LOG]
    assert fl.events()[2]["detail"] == "hello"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_active_span_stacks_follow_begin_end():
    fl = FlightRecorder(capacity=32)
    fl.begin("outer", tid=1)
    fl.begin("inner", tid=1)
    fl.begin("elsewhere", tid=2)
    assert fl.active_spans() == {"1": ["outer", "inner"], "2": ["elsewhere"]}
    fl.end("inner", tid=1)
    fl.end("elsewhere", tid=2)
    assert fl.active_spans() == {"1": ["outer"]}
    # Unbalanced exit: ending a non-top name drops the match, not the top.
    fl.begin("a", tid=3)
    fl.begin("b", tid=3)
    fl.end("a", tid=3)
    assert fl.active_spans()["3"] == ["b"]


def test_concurrent_writers_never_lose_or_tear_events():
    fl = FlightRecorder(capacity=4096)
    n_threads, n_spans = 4, 50

    def worker(k: int) -> None:
        for j in range(n_spans):
            fl.begin(f"t{k}.{j}", tid=k)
            fl.end(f"t{k}.{j}", tid=k)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert fl.total == n_threads * n_spans * 2
    events = fl.events()
    assert len(events) == n_threads * n_spans * 2
    # Sequence numbers are unique and strictly increasing: no slot was
    # torn or double-written under contention.
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert fl.active_spans() == {}


def test_durations_stay_nonnegative_under_backwards_clock_jump(monkeypatch):
    """An NTP step moving wall-clock backwards must not yield negative
    span durations: durations come from the monotonic stamp, and are
    clamped at zero as a backstop."""
    walls = iter([1000.0, 400.0, 100.0, 50.0])  # wall clock stepping back

    monkeypatch.setattr(obs_flight.time, "time", lambda: next(walls, 10.0))
    fl = FlightRecorder(capacity=32)
    fl.begin("ntp-span", tid=1)
    time.sleep(0.01)
    fl.end("ntp-span", tid=1)
    events = fl.events()
    assert [e["kind"] for e in events] == [KIND_BEGIN, KIND_END]
    begin, end = events
    # Wall time did go backwards — the scenario is real in this test.
    assert end["t"] < begin["t"]
    # Monotonic stamps are present and ordered regardless.
    assert end["mono"] >= begin["mono"]
    assert end["dur"] >= 0.0
    assert end["dur"] == pytest.approx(end["mono"] - begin["mono"], abs=1e-6)


def test_duration_matches_innermost_begin():
    fl = FlightRecorder(capacity=32)
    fl.begin("outer", tid=1)
    fl.begin("outer", tid=1)  # recursive same-name span
    fl.end("outer", tid=1)
    fl.end("outer", tid=1)
    ends = [e for e in fl.events() if e["kind"] == KIND_END]
    assert len(ends) == 2
    # Inner END pairs with inner BEGIN: its duration is the shorter one.
    assert ends[0]["dur"] <= ends[1]["dur"]
    assert all(e["dur"] >= 0.0 for e in ends)


# ----------------------------------------------------------------------
# integration with the span API
# ----------------------------------------------------------------------
def test_flight_only_span_path_taps_ring():
    fl = obs_flight.enable(capacity=64)
    assert not obs_trace.enabled()  # no full recorder installed
    with span("work", category="t") as sp:
        assert not sp  # falsy lightweight span
        sp.set(k=1)  # args are dropped, not recorded
        sp["k"] = 2
        assert fl.active_spans() != {}
    assert [(e["kind"], e["name"]) for e in fl.events()] == [
        ("B", "work"),
        ("E", "work"),
    ]
    assert fl.active_spans() == {}


def test_flight_taps_alongside_full_recorder_without_duplication():
    fl = obs_flight.enable(capacity=64)
    rec = obs_trace.enable()
    with span("both") as sp:
        assert sp  # the real Span, not the flight-only stand-in
    obs_trace.disable()
    assert [s.name for s in rec.spans] == ["both"]
    assert [(e["kind"], e["name"]) for e in fl.events()] == [
        ("B", "both"),
        ("E", "both"),
    ]


def test_enable_disable_lifecycle():
    assert not obs_flight.enabled()
    fl = obs_flight.enable(capacity=8)
    assert obs_flight.enabled() and obs_flight.get() is fl
    returned = obs_flight.disable()
    assert returned is fl
    assert not obs_flight.enabled() and obs_flight.get() is None
    with span("after-disable") as sp:
        assert sp is obs_trace.NULL_SPAN
    assert fl.total == 0


def test_warning_logs_mirrored_into_ring():
    fl = obs_flight.enable(capacity=32)
    log = get_logger("flighty")
    log.info("below the default level")
    log.warning("boom %d", 7)
    logs = [e for e in fl.events() if e["kind"] == KIND_LOG]
    assert len(logs) == 1
    assert logs[0]["name"] == "repro.flighty"
    assert logs[0]["detail"] == "boom 7"


# ----------------------------------------------------------------------
# crash reports
# ----------------------------------------------------------------------
CRASH_REPORT_KEYS = {
    "schema",
    "reason",
    "time",
    "pid",
    "argv",
    "python",
    "platform",
    "exception",
    "capacity",
    "events_total",
    "events_dropped",
    "events",
    "active_spans",
    "metrics",
}


def test_crash_report_shape_and_exception_capture():
    fl = FlightRecorder(capacity=16)
    fl.begin("doomed", tid=1)
    try:
        raise RuntimeError("kaboom")
    except RuntimeError as err:
        report = fl.crash_report("crash", exc=err)
    assert set(report) == CRASH_REPORT_KEYS
    assert report["schema"] == 1
    assert report["reason"] == "crash"
    assert report["pid"] == os.getpid()
    assert report["exception"]["type"] == "RuntimeError"
    assert report["exception"]["message"] == "kaboom"
    assert "kaboom" in report["exception"]["traceback"]
    assert report["active_spans"] == {"1": ["doomed"]}
    assert report["events"][0]["name"] == "doomed"
    json.dumps(report)  # must be JSON-serializable as-is


def test_crash_report_without_exception():
    fl = FlightRecorder(capacity=4)
    report = fl.crash_report("sigusr2")
    assert report["exception"] is None
    assert report["reason"] == "sigusr2"


def test_dump_crash_report_writes_loadable_file(tmp_path):
    fl = FlightRecorder(capacity=8)
    fl.begin("x", tid=1)
    path = fl.dump_crash_report(tmp_path, reason="test")
    assert os.path.dirname(path) == str(tmp_path)
    assert os.path.basename(path).startswith("crash-test-")
    loaded = json.loads(open(path, encoding="utf-8").read())
    assert set(loaded) == CRASH_REPORT_KEYS
    # The atomic tmp file never survives.
    assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]


def test_crash_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv(obs_flight.ENV_CRASH_DIR, str(tmp_path / "dumps"))
    assert obs_flight.crash_dir() == str(tmp_path / "dumps")
    monkeypatch.delenv(obs_flight.ENV_CRASH_DIR)
    assert obs_flight.crash_dir() == ".perflow"


@pytest.mark.skipif(
    not hasattr(signal, "SIGUSR2"), reason="platform lacks SIGUSR2"
)
def test_sigusr2_dumps_live_report(tmp_path):
    obs_flight.enable(capacity=32)
    assert obs_flight.install_signal_dump(tmp_path)
    try:
        with span("hanging"):
            os.kill(os.getpid(), signal.SIGUSR2)
            # The handler runs at the next bytecode boundary; give the
            # interpreter a moment on slow machines.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                dumps = [n for n in os.listdir(tmp_path) if n.startswith("crash-sigusr2-")]
                if dumps:
                    break
                time.sleep(0.01)
    finally:
        obs_flight.uninstall_signal_dump()
    assert dumps, "SIGUSR2 produced no crash report"
    report = json.loads((tmp_path / dumps[0]).read_text("utf-8"))
    assert report["reason"] == "sigusr2"
    # The span was still open when the signal hit: it shows as active.
    assert any("hanging" in names for names in report["active_spans"].values())


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_crash_writes_report(monkeypatch, capsys):
    def exploding(_args):
        raise RuntimeError("forced crash")

    monkeypatch.setattr("repro.cli.cmd_list", exploding)
    with pytest.raises(RuntimeError, match="forced crash"):
        main(["list"])
    err = capsys.readouterr().err
    assert "wrote crash report:" in err
    crash_dir = os.environ["PERFLOW_CRASH_DIR"]  # pinned by conftest
    dumps = [n for n in os.listdir(crash_dir) if n.startswith("crash-crash-")]
    assert len(dumps) == 1
    report = json.loads(open(os.path.join(crash_dir, dumps[0]), encoding="utf-8").read())
    assert report["exception"]["type"] == "RuntimeError"
    assert report["exception"]["message"] == "forced crash"
    # The flight recorder is torn down even after a crash.
    assert not obs_flight.enabled()


def test_cli_usage_error_is_not_a_crash(capsys):
    with pytest.raises(SystemExit):
        main(["run", "definitely-not-a-program"])
    crash_root = os.environ["PERFLOW_CRASH_DIR"]
    assert not os.path.isdir(crash_root) or not os.listdir(crash_root)


def test_cli_success_leaves_no_crash_report(capsys):
    assert main(["list"]) == EXIT_OK
    crash_root = os.environ["PERFLOW_CRASH_DIR"]
    assert not os.path.isdir(crash_root) or not os.listdir(crash_root)

"""Property-based tests on the runtime simulator's invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.model import (
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.runtime.executor import run_program


def build_exchange_program(pattern: str, iterations: int) -> Program:
    """Deadlock-free-by-construction communication skeletons."""
    p = Program(name=f"prop-{pattern}")
    body = [Stmt("w", cost=lambda ctx: 0.001 * (1 + ctx.rank % 3))]
    if pattern == "ring":
        body += [
            CommCall(CommOp.ISEND, peer=lambda c: (c.rank + 1) % c.nprocs, nbytes=64, req="s"),
            CommCall(CommOp.IRECV, peer=lambda c: (c.rank - 1) % c.nprocs, nbytes=64, req="r"),
            CommCall(CommOp.WAITALL),
        ]
    elif pattern == "allreduce":
        body += [CommCall(CommOp.ALLREDUCE, nbytes=8)]
    elif pattern == "shift":
        body += [
            CommCall(
                CommOp.SENDRECV,
                peer=lambda c: (c.rank + 1) % c.nprocs,
                source=lambda c: (c.rank - 1) % c.nprocs,
                nbytes=32,
            )
        ]
    elif pattern == "barrier":
        body += [CommCall(CommOp.BARRIER)]
    p.add_function(Function("main", [Loop(trips=iterations, body=body)]))
    return p


@settings(max_examples=30, deadline=None)
@given(
    pattern=st.sampled_from(["ring", "allreduce", "shift", "barrier"]),
    nprocs=st.integers(min_value=1, max_value=9),
    iterations=st.integers(min_value=1, max_value=4),
)
def test_exchange_patterns_never_deadlock(pattern, nprocs, iterations):
    run = run_program(build_exchange_program(pattern, iterations), nprocs=nprocs)
    assert run.elapsed > 0
    assert set(run.per_rank_elapsed) == set(range(nprocs))


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=8),
    iterations=st.integers(min_value=1, max_value=4),
)
def test_ring_message_conservation(nprocs, iterations):
    """Every posted isend is matched exactly once."""
    run = run_program(build_exchange_program("ring", iterations), nprocs=nprocs)
    p2p = [ev for ev in run.comm_events if ev.participants is None]
    assert len(p2p) == nprocs * iterations
    per_pair = {}
    for ev in p2p:
        per_pair[(ev.src_rank, ev.dst_rank)] = per_pair.get((ev.src_rank, ev.dst_rank), 0) + 1
    for (src, dst), count in per_pair.items():
        assert dst == (src + 1) % nprocs
        assert count == iterations


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=6),
    iterations=st.integers(min_value=1, max_value=3),
)
def test_collective_event_per_iteration(nprocs, iterations):
    run = run_program(build_exchange_program("allreduce", iterations), nprocs=nprocs)
    colls = [ev for ev in run.comm_events if ev.participants is not None]
    assert len(colls) == iterations
    for ev in colls:
        assert len(ev.participants) == nprocs
        waits = [w for (_r, _p, _a, w) in ev.participants]
        assert min(waits) == 0.0  # the last arrival never waits
        assert all(w >= 0 for w in waits)


@settings(max_examples=15, deadline=None)
@given(
    nthreads=st.integers(min_value=1, max_value=6),
    holds=st.lists(st.floats(min_value=1e-4, max_value=1e-2), min_size=1, max_size=4),
)
def test_lock_serialization_lower_bound(nthreads, holds):
    """Elapsed >= total serialized hold time, always."""
    p = Program(name="locks")
    body = [
        ThreadCall(ThreadOp.ALLOC, hold=h, name=f"alloc{i}")
        for i, h in enumerate(holds)
    ]
    p.add_function(
        Function(
            "main",
            [
                ThreadCall(ThreadOp.CREATE, count=nthreads, body=body),
                ThreadCall(ThreadOp.JOIN),
            ],
        )
    )
    run = run_program(p, nprocs=1, nthreads=nthreads)
    assert run.elapsed >= nthreads * sum(holds) - 1e-9


@settings(max_examples=15, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=8))
def test_elapsed_monotone_under_extra_work(nprocs):
    base = run_program(build_exchange_program("ring", 2), nprocs=nprocs).elapsed

    p = build_exchange_program("ring", 2)
    p.function("main").body.append(Stmt("extra", cost=0.5))
    p.register_nodes([p.function("main").body[-1]])
    heavier = run_program(p, nprocs=nprocs).elapsed
    assert heavier >= base + 0.5 - 1e-9

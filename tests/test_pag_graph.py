"""Unit tests for the PAG container."""

import pytest

from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, VertexLabel


@pytest.fixture
def small_pag():
    g = PAG("test")
    main = g.add_vertex(VertexLabel.FUNCTION, "main")
    loop = g.add_vertex(VertexLabel.LOOP, "loop_1")
    call = g.add_vertex(VertexLabel.CALL, "MPI_Send", CallKind.COMM, {"time": 1.5})
    g.add_edge(main, loop, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(loop, call, EdgeLabel.INTRA_PROCEDURAL)
    return g


def test_vertex_ids_dense(small_pag):
    assert [v.id for v in small_pag.vertices()] == [0, 1, 2]
    assert small_pag.num_vertices == 3
    assert len(small_pag) == 3


def test_edge_endpoints(small_pag):
    e = small_pag.edge(1)
    assert e.src.name == "loop_1"
    assert e.dst.name == "MPI_Send"
    assert e.other(e.src_id) == e.dst_id
    assert e.other(e.dst_id) == e.src_id
    with pytest.raises(ValueError):
        e.other(99)


def test_add_edge_by_id_and_object(small_pag):
    e = small_pag.add_edge(0, 2, EdgeLabel.INTER_PROCEDURAL)
    assert e.src_id == 0 and e.dst_id == 2
    assert small_pag.num_edges == 3


def test_add_edge_invalid_vertex(small_pag):
    with pytest.raises(KeyError):
        small_pag.add_edge(0, 42, EdgeLabel.INTRA_PROCEDURAL)


def test_adjacency(small_pag):
    assert [v.name for v in small_pag.successors(0)] == ["loop_1"]
    assert [v.name for v in small_pag.predecessors(2)] == ["loop_1"]
    assert small_pag.out_degree(1) == 1
    assert small_pag.in_degree(1) == 1
    assert small_pag.degree(1) == 2
    names = {v.name for v in small_pag.neighbors(1)}
    assert names == {"main", "MPI_Send"}


def test_neighbors_deduplicated():
    g = PAG()
    a = g.add_vertex(VertexLabel.FUNCTION, "a")
    b = g.add_vertex(VertexLabel.FUNCTION, "b")
    g.add_edge(a, b, EdgeLabel.INTRA_PROCEDURAL)
    g.add_edge(b, a, EdgeLabel.INTRA_PROCEDURAL)
    assert [v.id for v in g.neighbors(a)] == [b.id]


def test_in_out_edge_sets(small_pag):
    assert len(small_pag.out_edges(1)) == 1
    assert len(small_pag.in_edges(1)) == 1
    assert len(small_pag.incident(1)) == 2


def test_copy_is_deep_structurally(small_pag):
    g2 = small_pag.copy()
    assert g2.num_vertices == small_pag.num_vertices
    assert g2.num_edges == small_pag.num_edges
    g2.vertex(2)["time"] = 99.0
    assert small_pag.vertex(2)["time"] == 1.5
    g2.add_vertex(VertexLabel.INSTRUCTION, "new")
    assert small_pag.num_vertices == 3


def test_subgraph_induced(small_pag):
    sub, remap = small_pag.subgraph([1, 2])
    assert sub.num_vertices == 2
    assert sub.num_edges == 1  # only loop->call survives
    assert sub.vertex(remap[2]).name == "MPI_Send"
    assert sub.vertex(remap[2])["time"] == 1.5


def test_find_vertices(small_pag):
    assert [v.id for v in small_pag.find_vertices(label=VertexLabel.LOOP)] == [1]
    assert [v.id for v in small_pag.find_vertices(name="MPI_Send")] == [2]
    assert small_pag.find_vertices(call_kind=CallKind.COMM)[0].name == "MPI_Send"
    assert small_pag.find_vertices(time=1.5)[0].id == 2
    assert small_pag.find_vertices(name="nope") == []


def test_vs_and_es_aliases(small_pag):
    assert len(small_pag.vs) == 3
    assert len(small_pag.V) == 3
    assert len(small_pag.es_all) == 2
    assert len(small_pag.E) == 2


def test_comm_kind_only_on_inter_process():
    g = PAG()
    a = g.add_vertex(VertexLabel.CALL, "x", CallKind.COMM)
    b = g.add_vertex(VertexLabel.CALL, "y", CallKind.COMM)
    with pytest.raises(ValueError):
        g.add_edge(a, b, EdgeLabel.INTRA_PROCEDURAL, CommKind.P2P_SYNC)
    e = g.add_edge(a, b, EdgeLabel.INTER_PROCESS, CommKind.P2P_ASYNC)
    assert e.comm_kind is CommKind.P2P_ASYNC


def test_repr(small_pag):
    assert "|V|=3" in repr(small_pag)
    assert "MPI_Send" in repr(small_pag.vertex(2))
    assert "->" in repr(small_pag.edge(0))

"""Unit tests for the IR interpreter (via run_program)."""

import pytest

from repro.ir.model import (
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.ir.static_analysis import analyze
from repro.runtime.executor import run_program

from tests.conftest import make_ring_program, make_threaded_program


def paths_by_name(program, result):
    """Map context path -> static vertex name for assertion convenience."""
    res = analyze(program, result.indirect_targets)
    out = {}
    for path in result.vertex_stats:
        v = res.vertex_for_path(path)
        out.setdefault(v.name if v else None, []).append(path)
    return out


def test_stmt_costs_accumulate():
    p = Program(name="t")
    p.add_function(Function("main", [Stmt("a", cost=0.5), Stmt("b", cost=0.25)]))
    r = run_program(p, nprocs=1)
    assert r.elapsed == pytest.approx(0.75)


def test_loop_iterations_and_context():
    seen = []

    def cost(ctx):
        seen.append(ctx.iterations)
        return 0.1

    p = Program(name="t")
    p.add_function(
        Function("main", [Loop(trips=2, body=[Loop(trips=2, body=[Stmt("x", cost=cost)])])])
    )
    r = run_program(p, nprocs=1)
    assert seen == [(0, 0), (0, 1), (1, 0), (1, 1)]
    assert r.elapsed == pytest.approx(0.4)


def test_loop_count_recorded():
    p = Program(name="t")
    loop = Loop(trips=7, body=[Stmt("x", cost=0.0)], name="L")
    p.add_function(Function("main", [loop]))
    r = run_program(p, nprocs=1)
    stats = r.vertex_stats[("f:main", loop.uid)]
    assert stats[(0, 0)].count == 7


def test_branch_selects_by_rank():
    p = Program(name="t")
    p.add_function(Function("heavy", [Stmt("h", cost=1.0)]))
    p.add_function(Function("light", [Stmt("l", cost=0.1)]))
    from repro.ir.model import Branch

    p.add_function(
        Function(
            "main",
            [
                Branch(
                    lambda ctx: ctx.rank == 0,
                    then_body=[Call("heavy")],
                    else_body=[Call("light")],
                )
            ],
        )
    )
    r = run_program(p, nprocs=2)
    assert r.per_rank_elapsed[0] == pytest.approx(1.0)
    assert r.per_rank_elapsed[1] == pytest.approx(0.1)


def test_external_call_costs():
    p = Program(name="t")
    p.add_function(Function("main", [Call("libm", target=CallTarget.EXTERNAL, cost=0.3)]))
    r = run_program(p, nprocs=1)
    assert r.elapsed == pytest.approx(0.3)


def test_unknown_user_callee_treated_external():
    p = Program(name="t")
    p.add_function(Function("main", [Call("not_modelled", cost=0.2)]))
    r = run_program(p, nprocs=1)
    assert r.elapsed == pytest.approx(0.2)


def test_indirect_targets_traced():
    p = Program(name="t")
    p.add_function(Function("fa", [Stmt("a", cost=0.1)]))
    p.add_function(Function("fb", [Stmt("b", cost=0.1)]))
    ind = Call(lambda ctx: "fa" if ctx.rank == 0 else "fb", target=CallTarget.INDIRECT, name="fp")
    p.add_function(Function("main", [ind]))
    r = run_program(p, nprocs=2)
    assert r.indirect_targets[ind.uid] == {"fa", "fb"}


def test_comm_stats_time_wait_bytes(imbalanced_ring):
    r = run_program(imbalanced_ring, nprocs=4)
    names = paths_by_name(imbalanced_ring, r)
    waitall_path = names["MPI_Waitall"][0]
    per_unit = r.vertex_stats[waitall_path]
    total_wait = sum(s.wait for s in per_unit.values())
    assert total_wait > 0  # rank 2's slowness makes others wait
    isend_path = names["MPI_Isend"][0]
    isend = r.vertex_stats[isend_path]
    assert all(s.nbytes == 1024 * s.count for s in isend.values())


def test_thread_context_and_stats(threaded_program):
    r = run_program(threaded_program, nprocs=1, nthreads=3, params={"nthreads": 3})
    threads_seen = set()
    for per_unit in r.vertex_stats.values():
        for (_rank, thread) in per_unit:
            threads_seen.add(thread)
    assert threads_seen == {0, 1, 2, 3}  # main + 3 spawned


def test_allocator_lock_contention(threaded_program):
    r = run_program(threaded_program, nprocs=1, nthreads=4, params={"nthreads": 4})
    assert len(r.lock_events) > 0
    for ev in r.lock_events:
        assert ev.lock == "__malloc__"
        assert ev.wait_time > 0
        assert ev.holder_thread != ev.waiter_thread


def test_mpi_from_spawned_thread_rejected():
    p = Program(name="bad")
    p.add_function(
        Function(
            "main",
            [
                ThreadCall(
                    ThreadOp.CREATE,
                    count=1,
                    body=[CommCall(CommOp.BARRIER)],
                ),
                ThreadCall(ThreadOp.JOIN),
            ],
        )
    )
    with pytest.raises(RuntimeError, match="MPI_THREAD_FUNNELED"):
        run_program(p, nprocs=1, nthreads=2)


def test_sendrecv_with_distinct_source():
    p = Program(name="shift")
    p.add_function(
        Function(
            "main",
            [
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda c: (c.rank + 1) % c.nprocs,
                    source=lambda c: (c.rank - 1) % c.nprocs,
                    nbytes=512,
                ),
            ],
        )
    )
    r = run_program(p, nprocs=5)
    assert len(r.comm_events) == 5  # one matched message per rank
    pairs = {(ev.src_rank, ev.dst_rank) for ev in r.comm_events}
    assert pairs == {(i, (i + 1) % 5) for i in range(5)}


def test_run_program_validates_arguments(ring_program):
    with pytest.raises(ValueError):
        run_program(ring_program, nprocs=0)
    with pytest.raises(ValueError):
        run_program(ring_program, nprocs=1, nthreads=0)


def test_determinism(imbalanced_ring):
    r1 = run_program(imbalanced_ring, nprocs=4)
    r2 = run_program(imbalanced_ring, nprocs=4)
    assert r1.elapsed == r2.elapsed
    assert len(r1.comm_events) == len(r2.comm_events)
    for a, b in zip(r1.comm_events, r2.comm_events):
        assert (a.src_rank, a.dst_rank, a.t_complete) == (b.src_rank, b.dst_rank, b.t_complete)


def test_nthreads_param_injected(ring_program):
    r = run_program(ring_program, nprocs=2, nthreads=4)
    assert r.params["nthreads"] == 4
    r2 = run_program(ring_program, nprocs=2, nthreads=4, params={"nthreads": 8})
    assert r2.params["nthreads"] == 8  # explicit param wins


def test_total_time_helper(ring_program):
    r = run_program(ring_program, nprocs=2)
    some_path = next(iter(r.vertex_stats))
    assert r.total_time(some_path) >= 0
    assert r.total_time(("nope",)) == 0.0

"""Focused tests for corners the broader suites do not reach."""

import math

import pytest

from repro.ir.model import CommOp, Function, Loop, Program, Stmt
from repro.runtime.machine import MachineModel


# ------------------------------------------------------------------ machine
def test_transfer_time_alpha_beta():
    m = MachineModel(latency=1e-6, bandwidth=1e9)
    assert m.transfer_time(0) == pytest.approx(1e-6)
    assert m.transfer_time(1e9) == pytest.approx(1.000001)


def test_collective_costs_ordered():
    m = MachineModel()
    p = 64
    barrier = m.collective_time(CommOp.BARRIER, 0, p)
    bcast = m.collective_time(CommOp.BCAST, 4096, p)
    allreduce = m.collective_time(CommOp.ALLREDUCE, 4096, p)
    alltoall = m.collective_time(CommOp.ALLTOALL, 4096, p)
    assert barrier < bcast < allreduce < alltoall


def test_collective_scales_logarithmically():
    m = MachineModel()
    t64 = m.collective_time(CommOp.BCAST, 0, 64)
    t4096 = m.collective_time(CommOp.BCAST, 0, 4096)
    assert t4096 / t64 == pytest.approx(math.log2(4096) / math.log2(64))


def test_collective_single_rank():
    m = MachineModel()
    assert m.collective_time(CommOp.ALLREDUCE, 8, 1) == m.latency


def test_collective_rejects_p2p_op():
    m = MachineModel()
    with pytest.raises(ValueError, match="not a collective"):
        m.collective_time(CommOp.SEND, 8, 4)


def test_eager_copy_time():
    m = MachineModel(copy_bandwidth=1e9, latency=0.0)
    assert m.eager_copy_time(1e9) == pytest.approx(1.0)


# ------------------------------------------------------------- view details
def test_flow_edges_preserve_tree_labels():
    from repro.pag.edge import EdgeLabel
    from repro.pag.views import build_parallel_view, build_top_down_view
    from repro.runtime.executor import run_program
    from tests.conftest import make_ring_program

    prog = make_ring_program()
    run = run_program(prog, nprocs=2)
    td, sr = build_top_down_view(prog, run)
    pv = build_parallel_view(td, sr, run)
    # the call -> function descent in the tree is inter-procedural; the
    # corresponding flow edge keeps that label
    inter = [
        e
        for e in pv.edges()
        if e.label is EdgeLabel.INTER_PROCEDURAL
        and e.dst.name == "work"
    ]
    assert inter, "call->function flow edges must keep the inter-procedural label"


def test_parallel_view_drops_out_of_range_events():
    from repro.pag.views import build_parallel_view, build_top_down_view
    from repro.runtime.executor import run_program
    from tests.conftest import make_ring_program

    prog = make_ring_program()
    run = run_program(prog, nprocs=4)
    td, sr = build_top_down_view(prog, run)
    pv = build_parallel_view(td, sr, run, max_ranks=2)
    for e in pv.edges():
        assert e.src["process"] < 2 and e.dst["process"] < 2


# ---------------------------------------------------------------- recursion
def test_recursion_depth_bounds_expansion():
    from repro.ir.static_analysis import MAX_RECURSION_DEPTH, analyze
    from repro.ir.model import Call

    p = Program(name="deep")
    p.add_function(
        Function("r", [Stmt("w", cost=0.0), Call("r", line=2)], source_file="r.c", line=1)
    )
    p.add_function(Function("main", [Call("r", line=10)], source_file="r.c", line=9))
    res = analyze(p)
    instances = [
        v for v in res.pag.vertices() if v.name == "r" and v.label.value == "function"
    ]
    assert len(instances) == MAX_RECURSION_DEPTH


# -------------------------------------------------------------- engine edge
def test_waitall_empty_labels_waits_everything():
    from repro.runtime.engine import (
        Engine,
        FinishReq,
        RecvReq,
        SendReq,
        WaitReq,
    )
    from repro.runtime.machine import MachineModel as MM
    from repro.runtime.tracer import Tracer

    done = {}

    def a():
        yield SendReq(t=0.0, dst=1, nbytes=8, blocking=False, label="x", path=("a",))
        yield SendReq(t=0.0, dst=1, nbytes=8, blocking=False, label="y", path=("a",))
        c = yield WaitReq(t=0.0, labels=(), path=("w",))  # empty = all
        done["a"] = c.t
        yield FinishReq(t=c.t)

    def b():
        c = yield RecvReq(t=1.0, src=0, nbytes=8, blocking=True, path=("b",))
        c = yield RecvReq(t=c.t, src=0, nbytes=8, blocking=True, path=("b",))
        yield FinishReq(t=c.t)

    tracer = Tracer()
    eng = Engine(2, MM(), tracer)
    eng.add_unit(0, 0, a())
    eng.add_unit(1, 0, b())
    eng.run()
    assert done["a"] > 1.0  # waited for both matches


def test_collective_misuse_deadlocks():
    """Two units of one rank entering collectives while rank 1 never does:
    an MPI misuse the engine must surface rather than hang."""
    from repro.runtime.engine import CollReq, DeadlockError, Engine
    from repro.runtime.machine import MachineModel as MM
    from repro.runtime.tracer import Tracer

    def solo():
        yield CollReq(t=0.0, op=CommOp.BARRIER, path=("x",))

    eng = Engine(2, MM(), Tracer())
    eng.add_unit(0, 0, solo())
    eng.add_unit(0, 1, solo())
    with pytest.raises(DeadlockError):
        eng.run()


# -------------------------------------------------------------- report misc
def test_report_dots_accumulate():
    from repro.passes.report import Report

    rep = Report().add_dot("digraph a {}").add_dot("digraph b {}")
    assert len(rep.dots) == 2
    assert rep.dots[0].startswith("digraph")


def test_format_table_empty_set():
    from repro.passes.report import format_table

    out = format_table([], ["name", "time"])
    assert "name" in out


# ------------------------------------------------------------- lowlevel API
def test_lowlevel_subgraph_matching_wrapper():
    from repro.dataflow import lowlevel
    from repro.pag.edge import EdgeLabel
    from repro.pag.graph import PAG
    from repro.pag.vertex import VertexLabel

    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "a")
    g.add_vertex(VertexLabel.INSTRUCTION, "b")
    g.add_edge(0, 1, EdgeLabel.INTRA_PROCEDURAL)
    pat = lowlevel.graph()
    pat.add_vertices([(1, "X"), (2, "Y")])
    pat.add_edges([(1, 2)])
    V_ebd, E_ebd = lowlevel.subgraph_matching(g, pat)
    assert len(V_ebd) == 2
    assert len(E_ebd) == 1


# ------------------------------------------------------------- npb coverage
@pytest.mark.parametrize("name", ["bt", "ft", "mg", "sp"])
def test_remaining_npb_kernels_run(name):
    from repro.apps.npb import BUILDERS
    from repro.runtime.executor import run_program

    run = run_program(BUILDERS[name]("S", iterations=2), nprocs=8)
    assert run.elapsed > 0
    assert run.comm_events


def test_npb_mg_levels_parameter():
    from repro.apps.npb import build_mg
    from repro.ir.static_analysis import analyze

    # fewer levels -> fewer core vertices before padding, same final target
    prog = build_mg("S", levels=4)
    assert analyze(prog).pag.num_vertices == 4701


# ------------------------------------------------------------------ sampler
def test_sampler_collect_returns_list():
    from repro.runtime.executor import run_program
    from repro.runtime.sampler import Sampler
    from tests.conftest import make_ring_program

    run = run_program(make_ring_program(), nprocs=2)
    recs = Sampler(100).collect(run)
    assert isinstance(recs, list) and recs

"""Out-of-core format 3: header reads, lazy columns, fingerprint seeding.

The round-trip *content* properties live in
``tests/test_serialize_roundtrip.py``; this module covers the
out-of-core machinery itself — the binary header, the O(header)
fingerprint probe, copy-on-write column promotion, the observability
counters, the counting-sink ``storage_size``, and a committed golden
fixture guarding the on-disk layout against accidental format drift.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache.fingerprint import fingerprint_pag
from repro.obs import metrics as obs_metrics
from repro.pag import PAG, CallKind, CommKind, EdgeLabel, VertexLabel
from repro.pag.columns import FloatColumn, SegmentBacking, StrColumn
from repro.pag.formats import (
    PAGFormatError,
    detect_format,
    load_pag,
    pag_file_fingerprint,
    read_header,
    save_pag,
    segment_sizes,
    storage_size,
)
from repro.pag.formats.format3 import ALIGN, HEADER_SIZE


def _sample_pag() -> PAG:
    pag = PAG("fmt3/sample", {"view": "top-down", "nprocs": 4})
    v0 = pag.add_vertex(VertexLabel.FUNCTION, "main", None, {"time": 2.5, "count": 1})
    v1 = pag.add_vertex(
        VertexLabel.CALL,
        "MPI_Allreduce",
        CallKind.COMM,
        {"time": 0.75, "debug-info": "solver.c:42", "wait": 0.5},
    )
    v2 = pag.add_vertex(
        VertexLabel.LOOP,
        "k-loop",
        None,
        {"time": 1.5, "time_per_rank": np.array([0.3, 0.5, 0.4, 0.3])},
    )
    pag.add_edge(v0, v1, EdgeLabel.INTER_PROCEDURAL, None, {"count": 12})
    pag.add_edge(v0, v2, EdgeLabel.INTRA_PROCEDURAL)
    pag.add_edge(v1, v2, EdgeLabel.INTER_PROCESS, CommKind.COLLECTIVE, {"bytes": 4096})
    return pag


@pytest.fixture()
def saved(tmp_path):
    pag = _sample_pag()
    path = tmp_path / "sample.pag3"
    # per-rank vectors kept: the save is lossless, so the stamped
    # fingerprint equals the original graph's (see the dedicated lossy
    # test below for the summarized case)
    save_pag(pag, path, include_per_rank=True, format=3)
    return pag, path


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------
def test_header_fields(saved):
    pag, path = saved
    hdr = read_header(path)
    assert hdr["version"] == 1
    assert hdr["num_vertices"] == 3
    assert hdr["num_edges"] == 3
    assert hdr["fingerprint"] == pag.fingerprint()
    assert hdr["data_start"] % ALIGN == 0
    assert hdr["data_start"] >= HEADER_SIZE
    for name, (off, _nbytes) in hdr["directory"]["segments"].items():
        assert off % ALIGN == 0, name


def test_detect_format(saved, tmp_path):
    _pag, path = saved
    assert detect_format(path) == 3
    p2 = tmp_path / "s.json"
    save_pag(_pag, p2, format=2)
    assert detect_format(p2) == 2
    p1 = tmp_path / "s1.json"
    save_pag(_pag, p1, format=1)
    assert detect_format(p1) == 1


def test_pag_file_fingerprint_matches_loaded_graph(saved):
    pag, path = saved
    fp = pag_file_fingerprint(path)
    assert fp == pag.fingerprint()
    for mmap in (False, True):
        loaded = load_pag(path, mmap=mmap)
        assert loaded.fingerprint() == fp
        assert fingerprint_pag(loaded) == fp  # forced full recompute


def test_storage_size_matches_file_exactly(saved):
    pag, path = saved
    size = os.stat(path).st_size
    assert storage_size(pag, include_per_rank=True, format=3) == size
    sizes = segment_sizes(pag, include_per_rank=True)
    assert sum(sizes.values()) == size
    assert sizes["header"] == HEADER_SIZE
    assert "v.time.data" in sizes


# ----------------------------------------------------------------------
# zero-column-read fingerprint probes
# ----------------------------------------------------------------------
def test_fingerprint_of_unmutated_mmap_pag_reads_no_columns(saved, monkeypatch):
    """The header seed means fingerprint() must never call
    content_digest on an unmutated mmap-loaded graph — which is what
    makes cache probes on warm corpora O(header)."""
    _pag, path = saved
    loaded = load_pag(path, mmap=True)

    import repro.cache.fingerprint as fp_mod

    def boom(*_a, **_k):  # pragma: no cover - must not run
        raise AssertionError("content_digest read column data")

    monkeypatch.setattr(fp_mod, "content_digest", boom)
    fp = loaded.fingerprint()
    assert fp == read_header(path)["fingerprint"]
    # cache key digests go through the same seeded path
    from repro.cache.keys import value_digest

    value_digest(loaded.vs)


def test_fingerprint_recomputes_after_mutation(saved, monkeypatch):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    before = loaded.fingerprint()
    loaded.vertex(0)["time"] = 99.0
    after = loaded.fingerprint()
    assert after != before
    assert after == fingerprint_pag(loaded)


# ----------------------------------------------------------------------
# lazy columns / copy-on-write
# ----------------------------------------------------------------------
def test_mmap_load_attaches_lazy_columns(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    typed = [
        col
        for store in (loaded._vprops, loaded._eprops)
        for col in store.columns.values()
        if isinstance(col, (FloatColumn, StrColumn)) or hasattr(col, "is_lazy")
    ]
    lazy = [c for c in typed if getattr(c, "is_lazy", False)]
    assert lazy, "mmap load produced no lazy columns"
    assert all(c._backing.buffer is loaded._backing.buffer for c in lazy)
    assert isinstance(loaded._backing, SegmentBacking)
    # eager load owns everything on the heap
    eager = load_pag(path, mmap=False)
    assert eager._backing is None
    for store in (eager._vprops, eager._eprops):
        for col in store.columns.values():
            assert not getattr(col, "is_lazy", False)


def test_reads_do_not_promote(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    col = loaded._vprops.columns["time"]
    assert col.is_lazy
    assert loaded.vertex(0)["time"] == 2.5
    vals = loaded.vs.values("time")
    assert len(vals) == 3
    loaded.vs.sort_by("time")
    assert col.is_lazy, "a read path promoted the column"


def test_writes_promote_only_the_touched_column(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    time_col = loaded._vprops.columns["time"]
    count_col = loaded._vprops.columns["count"]
    loaded.vertex(0)["time"] = 5.0
    assert not time_col.is_lazy
    assert count_col.is_lazy
    assert loaded.vertex(0)["time"] == 5.0
    assert loaded.vertex(1)["time"] == 0.75  # other rows survived promotion


def test_structural_thaw_on_add_vertex(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    assert isinstance(loaded._v_label, np.ndarray)
    loaded.add_vertex(VertexLabel.FUNCTION, "late")
    assert not isinstance(loaded._v_label, np.ndarray)
    assert loaded.num_vertices == 4
    assert loaded.vertex(3).name == "late"
    assert loaded.vertex(1).name == "MPI_Allreduce"


def test_vertex_rename_thaws(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    loaded.vertex(0).name = "renamed"
    assert loaded.vertex(0).name == "renamed"
    assert not isinstance(loaded._v_name, np.ndarray)


def test_copy_of_mmap_pag_is_heap_owned(saved):
    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    dup = loaded.copy()
    assert not isinstance(dup._v_label, np.ndarray)
    for store in (dup._vprops, dup._eprops):
        for col in store.columns.values():
            assert not getattr(col, "is_lazy", False)
    assert fingerprint_pag(dup) == fingerprint_pag(loaded)


def test_metrics_count_lazy_and_promotions(saved):
    _pag, path = saved
    lazy0 = obs_metrics.counter("pag.columns.lazy").value
    mat0 = obs_metrics.counter("pag.columns.materialized").value
    hdr0 = obs_metrics.counter("pag.load.header_only").value
    loaded = load_pag(path, mmap=True)
    lazy_n = obs_metrics.counter("pag.columns.lazy").value - lazy0
    assert lazy_n >= 4  # time/count/wait/debug-info at minimum
    loaded.vertex(0)["time"] = 1.0
    assert obs_metrics.counter("pag.columns.materialized").value == mat0 + 1
    pag_file_fingerprint(path)
    assert obs_metrics.counter("pag.load.header_only").value == hdr0 + 1


# ----------------------------------------------------------------------
# passes over mmap graphs
# ----------------------------------------------------------------------
def test_hotspot_pass_runs_on_mmap_pag(saved):
    import repro.dataflow  # noqa: F401 -- passes<->dataflow import cycle
    from repro.passes import hotspot_detection

    _pag, path = saved
    loaded = load_pag(path, mmap=True)
    hot = hotspot_detection(loaded.vs, metric="time", n=2)
    assert [v.name for v in hot] == ["main", "k-loop"]
    # the pass is read-only: no column promoted
    assert loaded._vprops.columns["time"].is_lazy


def test_lossy_save_stamps_loaded_fingerprint(tmp_path):
    """Without include_per_rank the save summarizes per-rank vectors, so
    the header fingerprint must match the graph a loader reconstructs —
    not the (richer) original."""
    pag = _sample_pag()
    path = tmp_path / "lossy.pag3"
    save_pag(pag, path, format=3)
    fp = pag_file_fingerprint(path)
    assert fp != pag.fingerprint()  # vector was summarized away
    for mmap in (False, True):
        loaded = load_pag(path, mmap=mmap)
        assert loaded.fingerprint() == fp
        assert fingerprint_pag(loaded) == fp


def test_per_rank_convert_roundtrip(tmp_path):
    pag = _sample_pag()
    path = tmp_path / "pr.pag3"
    save_pag(pag, path, include_per_rank=True, format=3)
    loaded = load_pag(path, mmap=True)
    np.testing.assert_allclose(
        loaded.vertex(2)["time_per_rank"], [0.3, 0.5, 0.4, 0.3]
    )
    assert fingerprint_pag(loaded) == pag.fingerprint()


def test_mmap_flag_ignored_for_json_formats(tmp_path):
    pag = _sample_pag()
    path = tmp_path / "s.json"
    save_pag(pag, path, format=2, include_per_rank=True)
    loaded = load_pag(path, mmap=True)  # silently eager for JSON
    assert loaded._backing is None
    assert fingerprint_pag(loaded) == pag.fingerprint()


def test_unknown_format_rejected(tmp_path):
    pag = _sample_pag()
    with pytest.raises(ValueError):
        save_pag(pag, tmp_path / "x", format=7)
    with pytest.raises(ValueError):
        storage_size(pag, format=0)


def test_read_header_on_non_format3_file(tmp_path):
    path = tmp_path / "j.json"
    save_pag(_sample_pag(), path, format=2)
    with pytest.raises(PAGFormatError):
        read_header(path)


# ----------------------------------------------------------------------
# golden fixture: the committed binary must keep loading bit-identically
# ----------------------------------------------------------------------
GOLDEN = os.path.join(os.path.dirname(__file__), "goldens", "format3_sample.pag3")


def _golden_pag() -> PAG:
    """Deterministic graph for the golden file (no RNG, no timestamps)."""
    pag = PAG("golden/format3", {"view": "top-down", "nprocs": 2, "case": "W"})
    a = pag.add_vertex(VertexLabel.FUNCTION, "main", None, {"time": 3.0, "count": 1})
    b = pag.add_vertex(
        VertexLabel.CALL, "MPI_Send", CallKind.COMM, {"time": 1.25, "debug-info": "m.c:7"}
    )
    c = pag.add_vertex(VertexLabel.LOOP, "iter", None, {"time": 0.5})
    pag.add_edge(a, b, EdgeLabel.INTER_PROCEDURAL, None, {"count": 4})
    pag.add_edge(a, c, EdgeLabel.INTRA_PROCEDURAL)
    pag.add_edge(b, c, EdgeLabel.INTER_PROCESS, CommKind.P2P_SYNC, {"bytes": 64})
    return pag


def test_golden_format3_fixture():
    """Set GOLDEN_REGEN=1 to regenerate after an intentional format bump."""
    pag = _golden_pag()
    if os.environ.get("GOLDEN_REGEN") == "1":
        save_pag(pag, GOLDEN, format=3)
    assert os.path.exists(GOLDEN), "golden missing; rerun with GOLDEN_REGEN=1"
    for mmap in (False, True):
        loaded = load_pag(GOLDEN, mmap=mmap)
        assert fingerprint_pag(loaded) == pag.fingerprint()
        assert loaded.fingerprint() == pag.fingerprint()
    assert pag_file_fingerprint(GOLDEN) == pag.fingerprint()
    # byte-identical re-encode: the writer is deterministic
    import io

    sink = io.BytesIO()
    from repro.pag.formats.format3 import write_format3

    write_format3(pag, sink.write, False)
    with open(GOLDEN, "rb") as fh:
        assert fh.read() == sink.getvalue()

"""DiskStore durability: orphaned temp files, racing readers/writers.

The serve tier leans on one disk cache shared by many threads and many
processes; these tests pin the crash/race behaviour that makes that
safe: orphaned ``*.tmp.*`` write files are reclaimed and budgeted,
temp names never collide across threads, a corrupt-entry unlink can
never destroy a concurrently-replaced good entry, and two processes
hammering one cache directory surface no exceptions and lose no
freshly written entries.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time

from repro.cache.store import CachedValue, DiskStore, MemoryLRU, PassCache


def _entry(payload: bytes = b"x" * 64) -> CachedValue:
    return CachedValue(payload=pickle.dumps(payload), set_refs=(), nbytes=len(payload))


def _key(i: int) -> str:
    return f"{i:040x}"


# ----------------------------------------------------------------------
# satellite 1: orphaned temp files are swept and budgeted
# ----------------------------------------------------------------------
def test_orphaned_tmp_file_is_reclaimed(tmp_path):
    """A crash between write and rename leaks a temp file; eviction reclaims it."""
    store = DiskStore(tmp_path, max_bytes=1 << 30, tmp_grace_s=0.0)
    orphan = tmp_path / "ab" / f"{_key(0xAB)}.pkl.tmp.99999.0"
    orphan.parent.mkdir(parents=True)
    orphan.write_bytes(b"z" * 512)
    store.put(_key(1), _entry())
    assert not orphan.exists()
    assert store.get(_key(1)) is not None


def test_fresh_tmp_file_survives_grace_period(tmp_path):
    store = DiskStore(tmp_path, max_bytes=1 << 30, tmp_grace_s=3600.0)
    orphan = tmp_path / "ab" / f"{_key(0xAB)}.pkl.tmp.99999.0"
    orphan.parent.mkdir(parents=True)
    orphan.write_bytes(b"z" * 512)
    store.put(_key(1), _entry())
    assert orphan.exists()  # could be an in-progress write: left alone
    assert store.stats()["tmp_bytes"] == 512


def test_tmp_bytes_count_toward_eviction_budget(tmp_path):
    """Un-reclaimable temp bytes still squeeze real entries out."""
    store = DiskStore(tmp_path, max_bytes=2600, tmp_grace_s=3600.0)
    orphan = tmp_path / "ab" / f"{_key(0xAB)}.pkl.tmp.99999.0"
    orphan.parent.mkdir(parents=True)
    orphan.write_bytes(b"z" * 1900)  # fresh: kept, but budgeted
    old_key, new_key = _key(1), _key(2)
    store.put(old_key, _entry(b"a" * 400))
    time.sleep(0.02)  # distinct mtimes so eviction order is stable
    store.put(new_key, _entry(b"b" * 400))
    # 1900 tmp + 2 entries (~514 B each) > 2600: the oldest entry had
    # to go, and 1900 + 514 <= 2600 keeps the newest.
    assert store.get(old_key) is None
    assert store.get(new_key) is not None


def test_clear_removes_tmp_files_too(tmp_path):
    store = DiskStore(tmp_path, tmp_grace_s=3600.0)
    store.put(_key(1), _entry())
    orphan = tmp_path / "ab" / f"{_key(0xAB)}.pkl.tmp.99999.0"
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_bytes(b"z")
    assert store.clear() == 1
    assert not orphan.exists()


# ----------------------------------------------------------------------
# satellite 3: concurrent readers/writers
# ----------------------------------------------------------------------
def test_concurrent_same_key_puts_from_threads(tmp_path):
    """Per-(pid, seq) temp names: same-key writers never collide."""
    store = DiskStore(tmp_path)
    errors = []

    def writer(i):
        try:
            for _ in range(20):
                store.put(_key(7), _entry(f"w{i}".encode() * 32))
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.get(_key(7)) is not None
    assert store.stats()["tmp_bytes"] == 0


def test_corrupt_entry_is_dropped(tmp_path):
    store = DiskStore(tmp_path)
    path = store._path(_key(3))
    path.parent.mkdir(parents=True)
    path.write_bytes(b"definitely not a pickle")
    assert store.get(_key(3)) is None
    assert not path.exists()


def test_corrupt_unlink_spares_concurrently_replaced_entry(tmp_path, monkeypatch):
    """A reader must not unlink a good entry another process just renamed in.

    Simulates the race deterministically: the unpickle of a corrupt blob
    "takes long enough" that a concurrent ``put`` lands a good entry at
    the same path before the reader reaches its unlink.
    """
    from repro.cache import store as store_mod

    store = DiskStore(tmp_path)
    key = _key(4)
    path = store._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"corrupt garbage")

    good = _entry(b"the good entry")
    real_loads = pickle.loads
    raced = {"done": False}

    def racing_loads(blob):
        if not raced["done"] and blob == b"corrupt garbage":
            raced["done"] = True
            # another process replaces the file mid-read...
            tmp = path.parent / f"{path.name}.race"
            tmp.write_bytes(pickle.dumps(good, protocol=4))
            os.replace(tmp, path)
            raise ValueError("corrupt")
        return real_loads(blob)

    monkeypatch.setattr(store_mod.pickle, "loads", racing_loads)
    assert store.get(key) is None  # the corrupt read still misses...
    assert path.exists()  # ...but the freshly replaced entry survives
    entry = store.get(key)
    assert entry is not None and entry.payload == good.payload


def _stress_worker(root: str, worker: int, iterations: int) -> None:
    """Child-process body: put/get/evict against a shared cache dir."""
    store = DiskStore(root, max_bytes=64 * 1024, tmp_grace_s=3600.0)
    for i in range(iterations):
        key = _key(worker * 100_000 + i)
        payload = (b"%d:%d;" % (worker, i)) * 64
        entry = CachedValue(
            payload=pickle.dumps(payload), set_refs=(), nbytes=len(payload)
        )
        store.put(key, entry)
        # A just-written entry is the newest file: mtime-LRU eviction
        # (ours or the sibling process's) must not have taken it.
        got = store.get(key)
        assert got is not None, f"lost freshly written entry {key}"
        assert pickle.loads(got.payload) == payload
        # Poke at the sibling's keyspace too: any answer is fine
        # (hit or miss) but never an exception.
        store.get(_key((1 - worker) * 100_000 + max(0, i - 3)))
    store.stats()


def test_two_process_stress_shared_cache_dir(tmp_path):
    """Satellite: concurrent put/get/evict across processes — no lost
    entries in the live window, no exceptions surfaced to callers."""
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_stress_worker, args=(str(tmp_path), w, 150))
        for w in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]
    # The directory is still usable and within budget afterwards.
    store = DiskStore(tmp_path, max_bytes=64 * 1024)
    store.put(_key(999), _entry(b"post-stress"))
    assert store.get(_key(999)) is not None
    assert store.stats()["bytes"] <= 64 * 1024 + 8192


# ----------------------------------------------------------------------
# MemoryLRU thread-safety (the server shares one PassCache)
# ----------------------------------------------------------------------
def test_memory_lru_concurrent_access(tmp_path):
    lru = MemoryLRU(max_bytes=16 * 1024, max_entries=64)
    errors = []

    def worker(i):
        try:
            for j in range(300):
                key = _key(i * 1000 + (j % 40))
                lru.put(key, _entry(b"m" * 64))
                lru.get(key)
                lru.stats()
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = lru.stats()
    assert stats["entries"] <= 64 and stats["bytes"] <= 16 * 1024


def test_pass_cache_stats_include_tmp(tmp_path):
    cache = PassCache(disk=DiskStore(tmp_path))
    cache.put(_key(1), _entry())
    stats = cache.stats()
    assert stats["disk"]["entries"] == 1
    assert stats["disk"]["tmp_bytes"] == 0

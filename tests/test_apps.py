"""Tests for the modelled applications (structure + injected behaviours)."""

import numpy as np
import pytest

from repro.apps import lammps, microbench, npb, registry, vite, zeusmp
from repro.ir.static_analysis import analyze
from repro.pag.views import build_top_down_view
from repro.runtime.executor import run_program


@pytest.mark.parametrize("name", list(npb.TABLE2))
def test_npb_topdown_vertex_counts_match_table2(name):
    prog = npb.BUILDERS[name]("S")
    res = analyze(prog)
    assert res.pag.num_vertices == npb.TABLE2[name][0]
    assert res.pag.num_edges == res.pag.num_vertices - 1


@pytest.mark.parametrize("name", ["cg", "ep", "is", "lu"])
def test_npb_kernels_run_small(name):
    prog = npb.BUILDERS[name]("S", iterations=2)
    run = run_program(prog, nprocs=8)
    assert run.elapsed > 0
    assert len(run.per_rank_elapsed) == 8


def test_npb_invalid_class():
    with pytest.raises(ValueError, match="unknown NPB class"):
        npb.build_cg("Z")


def test_npb_class_scales_cost():
    small = run_program(npb.build_ep("S", iterations=2), nprocs=4).elapsed
    big = run_program(npb.build_ep("C", iterations=2), nprocs=4).elapsed
    assert big > 2 * small


def test_cg_uses_p2p_reductions():
    prog = npb.build_cg("S", iterations=2)
    run = run_program(prog, nprocs=8)
    p2p = [ev for ev in run.comm_events if ev.participants is None]
    coll = [ev for ev in run.comm_events if ev.participants is not None]
    assert len(p2p) > 5 * len(coll)


def test_registry_covers_all_programs():
    reg = registry("S")
    assert set(reg) == {
        "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "zeusmp", "lammps", "vite",
    }
    prog = reg["cg"]()
    assert prog.name == "cg"


# -------------------------------------------------------------------- zeusmp
def test_zeusmp_structure():
    prog = zeusmp.build(steps=2)
    res = analyze(prog)
    assert res.pag.num_vertices == zeusmp.TARGET_VERTICES
    names = {v.name for v in res.pag.vertices()}
    assert {"bvald", "nudt", "newdt", "loop_10", "loop_10.1", "loop_1.1.1"} <= names
    waitalls = [v for v in res.pag.vertices() if v.name == "mpi_waitall_"]
    assert len(waitalls) == 3 * 1  # three waitall sites (inlined once via main loop)


def test_zeusmp_imbalance_and_fix():
    prog = zeusmp.build(steps=2)
    r = run_program(prog, nprocs=32)
    ro = run_program(prog, nprocs=32, params={"optimized": True})
    assert r.elapsed > ro.elapsed  # the fix helps
    td, _ = build_top_down_view(prog, r)
    loop = next(v for v in td.vertices() if v.name == "loop_10.1")
    pr = loop["time_per_rank"]
    assert pr.max() / pr.mean() > 1.2  # imbalanced
    tdo, _ = build_top_down_view(prog, ro)
    loopo = next(v for v in tdo.vertices() if v.name == "loop_10.1")
    pro = loopo["time_per_rank"]
    assert pro.max() / pro.mean() < 1.1  # balanced after the fix


def test_zeusmp_wait_propagates_to_allreduce():
    prog = zeusmp.build(steps=2)
    r = run_program(prog, nprocs=32)
    td, _ = build_top_down_view(prog, r)
    allreduce = next(v for v in td.vertices() if v.name == "mpi_allreduce_")
    assert allreduce["wait"] > 0.5 * allreduce["time"]


def test_zeusmp_scaling_shape():
    prog = zeusmp.build(steps=2)
    t8 = run_program(prog, nprocs=8).elapsed
    t64 = run_program(prog, nprocs=64).elapsed
    speedup = t8 / t64
    assert 3.0 < speedup < 8.0  # sublinear but real scaling from 8 to 64


# -------------------------------------------------------------------- lammps
def test_lammps_structure():
    prog = lammps.build(steps=2)
    res = analyze(prog)
    assert res.pag.num_vertices == lammps.TARGET_VERTICES
    names = {v.name for v in res.pag.vertices()}
    assert {"PairLJCut::compute", "CommBrick::reverse_comm", "loop_1.1", "MPI_Wait"} <= names


def test_lammps_balance_fix_improves_throughput():
    prog = lammps.build(steps=2)
    r = run_program(prog, nprocs=16, machine=lammps.MACHINE)
    rb = run_program(prog, nprocs=16, params={"balanced": True}, machine=lammps.MACHINE)
    imp = r.elapsed / rb.elapsed - 1
    assert 0.05 < imp < 0.35


def test_lammps_heavy_ranks_dominate_pair_loop():
    prog = lammps.build(steps=2)
    r = run_program(prog, nprocs=16, machine=lammps.MACHINE)
    td, _ = build_top_down_view(prog, r)
    loop = next(v for v in td.vertices() if v.name == "loop_1.1")
    pr = loop["time_per_rank"]
    heavy = {int(i) for i in np.argsort(pr)[-3:]}
    assert heavy == set(lammps.HEAVY_RANKS)


def test_lammps_delay_propagates_into_wait_sites():
    """The heavy ranks' pair-loop delay surfaces as skewed MPI_Wait time
    on their swap partners (the propagation the causal pass traces)."""
    prog = lammps.build(steps=2)
    r = run_program(prog, nprocs=16, machine=lammps.MACHINE)
    td, _ = build_top_down_view(prog, r)
    waits = [v for v in td.vertices() if v.name == "MPI_Wait"]
    assert any((v["wait"] or 0) > 0 for v in waits)
    skews = []
    for v in waits:
        pr = v["wait_per_rank"]
        if pr is not None and pr.mean() > 0:
            skews.append(pr.max() / pr.mean())
    assert max(skews) > 1.3  # ranks near the heavy ones wait far more


# -------------------------------------------------------------------- vite
def test_vite_structure():
    prog = vite.build()
    res = analyze(prog)
    assert res.pag.num_vertices == vite.TARGET_VERTICES
    names = {v.name for v in res.pag.vertices()}
    assert {"distExecuteLouvainIteration", "_M_realloc_insert", "_M_emplace", "allocate"} <= names


def test_vite_degrades_with_threads():
    prog = vite.build(phases=1)
    t2 = run_program(prog, nprocs=4, nthreads=2).elapsed
    t8 = run_program(prog, nprocs=4, nthreads=8).elapsed
    assert t8 > t2


def test_vite_optimized_scales_and_wins():
    prog = vite.build(phases=1)
    t8 = run_program(prog, nprocs=4, nthreads=8).elapsed
    o2 = run_program(prog, nprocs=4, nthreads=2, params={"optimized": True}).elapsed
    o8 = run_program(prog, nprocs=4, nthreads=8, params={"optimized": True}).elapsed
    assert o8 < o2  # positive thread scaling
    assert t8 / o8 > 5  # order-of-magnitude win at 8 threads


def test_vite_allocator_contention_recorded():
    prog = vite.build(phases=1)
    r = run_program(prog, nprocs=2, nthreads=4)
    assert len(r.lock_events) > 10
    assert all(ev.lock == "__malloc__" for ev in r.lock_events)


# -------------------------------------------------------------------- misc
def test_microbench_heaviest_thread_longest():
    prog = microbench.build()
    r = run_program(prog, nprocs=1, nthreads=4, params={"nthreads": 4})
    per_thread = {}
    for per_unit in r.vertex_stats.values():
        for (rank, thread), st in per_unit.items():
            if thread > 0:
                per_thread[thread] = per_thread.get(thread, 0.0) + st.time
    heaviest = max(per_thread, key=per_thread.get)
    assert heaviest == max(per_thread)  # the last thread does the most work


def test_padding_idempotent():
    prog = npb.build_ep("S")
    from repro.apps._common import pad_to_target

    before = analyze(prog).pag.num_vertices
    pad_to_target(prog, 10_000)  # second call: no-op
    assert analyze(prog).pag.num_vertices == before


def test_jitter_deterministic_and_bounded():
    from repro.apps._common import jitter

    vals = [jitter(r, salt=3) for r in range(100)]
    assert vals == [jitter(r, salt=3) for r in range(100)]
    assert all(0.98 <= v <= 1.02 for v in vals)
    assert len(set(vals)) > 50  # actually varies


def test_dims_and_neighbors():
    from repro.apps._common import dims_2d, dims_3d, neighbors_3d

    assert dims_2d(12) == (3, 4)
    px, py, pz = dims_3d(64)
    assert px * py * pz == 64
    nbrs = neighbors_3d(0, 64)
    assert len(nbrs) == 6
    assert all(0 <= n < 64 for n in nbrs)
    # symmetry: each neighbor pair appears in both lists equally often
    for n in set(nbrs):
        assert neighbors_3d(n, 64).count(0) == nbrs.count(n)

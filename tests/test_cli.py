"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("cg", "zeusmp", "lammps", "vite"):
        assert name in out
    assert "paradigms:" in out


def test_run_summary(capsys):
    assert main(["run", "cg", "--np", "4", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "4 ranks" in out
    assert "|V|=321" in out
    assert "overhead" in out


def test_run_with_report_and_dot(tmp_path, capsys):
    dot = tmp_path / "pag.dot"
    assert main(["run", "ep", "--np", "2", "--class", "S", "--report", "--dot", str(dot)]) == 0
    out = capsys.readouterr().out
    assert "PerFlow report" in out
    assert dot.exists()
    assert dot.read_text().startswith("digraph")


def test_unknown_program():
    with pytest.raises(SystemExit, match="unknown program"):
        main(["run", "nonexistent"])


def test_paradigm_mpi_profiler(capsys):
    assert main(["paradigm", "mpi-profiler", "cg", "--np", "4", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "app%" in out
    assert "MPI_" in out


def test_paradigm_communication(capsys):
    assert main(["paradigm", "communication", "zeusmp", "--np", "8"]) == 0
    out = capsys.readouterr().out
    assert "communication analysis" in out


def test_paradigm_scalability_requires_np_large():
    with pytest.raises(SystemExit, match="np-large"):
        main(["paradigm", "scalability", "cg", "--np", "4", "--class", "S"])


def test_paradigm_scalability(capsys):
    assert main(
        ["paradigm", "scalability", "zeusmp", "--np", "4", "--np-large", "16"]
    ) == 0
    out = capsys.readouterr().out
    assert "scaling-loss hotspots" in out
    assert "root-cause candidates" in out


def test_paradigm_critical_path(capsys):
    assert main(["paradigm", "critical-path", "ep", "--np", "2", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "critical path weight" in out


def test_paradigm_contention(capsys):
    assert main(["paradigm", "contention", "vite", "--np", "2", "--threads", "8"]) == 0
    out = capsys.readouterr().out
    assert "differential suspects" in out
    assert "contention" in out


def test_table1_command(capsys):
    assert main(["table1", "--ranks", "8", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "dynamic%" in out
    assert "zeusmp" in out


def test_table2_command(capsys):
    assert main(["table2", "--ranks", "8", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "|V|td" in out
    assert "85230" in out  # lammps row


def test_parser_rejects_bad_paradigm():
    parser = make_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["paradigm", "nope", "cg"])

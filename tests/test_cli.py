"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_ISSUES, EXIT_OK, EXIT_USAGE, main, make_parser


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("cg", "zeusmp", "lammps", "vite"):
        assert name in out
    assert "paradigms:" in out


def test_run_summary(capsys):
    assert main(["run", "cg", "--np", "4", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "4 ranks" in out
    assert "|V|=321" in out
    assert "overhead" in out


def test_run_with_report_and_dot(tmp_path, capsys):
    dot = tmp_path / "pag.dot"
    assert main(["run", "ep", "--np", "2", "--class", "S", "--report", "--dot", str(dot)]) == 0
    out = capsys.readouterr().out
    assert "PerFlow report" in out
    assert dot.exists()
    assert dot.read_text().startswith("digraph")


def test_pag_stats(capsys):
    assert main(["pag", "stats", "cg", "--np", "4", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "top-down view" in out
    assert "string table" in out
    assert "time_per_rank" in out


def test_pag_stats_json_with_parallel(capsys):
    assert main(
        ["pag", "stats", "cg", "--np", "4", "--class", "S", "--parallel", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"top-down", "parallel"}
    td = payload["top-down"]
    assert td["total"] > 0
    assert td["vertex_column_kinds"]["time"] == "f"
    assert payload["parallel"]["num_vertices"] > td["num_vertices"]


def test_unknown_program_exits_with_usage_code(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "nonexistent"])
    assert exc.value.code == EXIT_USAGE
    assert "unknown program" in capsys.readouterr().err


def test_paradigm_mpi_profiler(capsys):
    assert main(["paradigm", "mpi-profiler", "cg", "--np", "4", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "app%" in out
    assert "MPI_" in out


def test_paradigm_communication(capsys):
    assert main(["paradigm", "communication", "zeusmp", "--np", "8"]) == 0
    out = capsys.readouterr().out
    assert "communication analysis" in out


def test_paradigm_scalability_requires_np_large(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["paradigm", "scalability", "cg", "--np", "4", "--class", "S"])
    assert exc.value.code == EXIT_USAGE
    assert "np-large" in capsys.readouterr().err


def test_paradigm_scalability(capsys):
    assert main(
        ["paradigm", "scalability", "zeusmp", "--np", "4", "--np-large", "16"]
    ) == 0
    out = capsys.readouterr().out
    assert "scaling-loss hotspots" in out
    assert "root-cause candidates" in out


def test_paradigm_critical_path(capsys):
    assert main(["paradigm", "critical-path", "ep", "--np", "2", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "critical path weight" in out


def test_paradigm_contention(capsys):
    assert main(["paradigm", "contention", "vite", "--np", "2", "--threads", "8"]) == 0
    out = capsys.readouterr().out
    assert "differential suspects" in out
    assert "contention" in out


def test_table1_command(capsys):
    assert main(["table1", "--ranks", "8", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "dynamic%" in out
    assert "zeusmp" in out


def test_table2_command(capsys):
    assert main(["table2", "--ranks", "8", "--class", "S"]) == 0
    out = capsys.readouterr().out
    assert "|V|td" in out
    assert "85230" in out  # lammps row


def test_lint_clean_program(capsys):
    assert main(["lint", "cg", "--class", "S"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "no issues found" in out


def test_lint_issues_exit_code(capsys):
    # zeusmp's injected imbalance is a warning; default --fail-on=error passes
    assert main(["lint", "zeusmp"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "PF006" in out
    assert "bvald.F" in out
    # ... but --fail-on=warning turns it into the issues exit code
    assert main(["lint", "zeusmp", "--fail-on", "warning"]) == EXIT_ISSUES
    capsys.readouterr()


def test_lint_fail_on_never(capsys):
    assert main(["lint", "vite", "--fail-on", "never"]) == EXIT_OK
    assert "PF004" in capsys.readouterr().out


def test_lint_json_output(capsys):
    assert main(["lint", "lammps", "--json"]) == EXIT_OK
    payload = json.loads(capsys.readouterr().out)
    assert payload["subject"] == "lammps"
    assert "PF001" in {d["code"] for d in payload["diagnostics"]}


def test_lint_param_clears_injected_bug(capsys):
    assert main(
        ["lint", "zeusmp", "--param", "optimized", "--fail-on", "warning"]
    ) == EXIT_OK
    assert "PF006" not in capsys.readouterr().out


def test_lint_rule_selection(capsys):
    assert main(["lint", "lammps", "--rules", "PF006", "--fail-on", "never"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "PF006" in out
    assert "PF001" not in out


def test_lint_unknown_rule_code_usage_exit(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["lint", "cg", "--class", "S", "--rules", "PF999"])
    assert exc.value.code == EXIT_USAGE
    assert "no lint rule registered" in capsys.readouterr().err


def test_lint_bad_nprocs_usage_exit(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["lint", "cg", "--class", "S", "--np", "1"])
    assert exc.value.code == EXIT_USAGE
    assert "nprocs" in capsys.readouterr().err


def test_lint_unknown_program_usage_exit(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["lint", "nonexistent"])
    assert exc.value.code == EXIT_USAGE
    assert "unknown program" in capsys.readouterr().err


def test_parser_rejects_bad_paradigm():
    parser = make_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["paradigm", "nope", "cg"])


# ----------------------------------------------------------------------
# pass-result cache flags and subcommand
# ----------------------------------------------------------------------
def test_paradigm_with_cache_dir_populates_disk(tmp_path, capsys):
    cache_dir = tmp_path / "pf-cache"
    argv = [
        "paradigm", "mpi-profiler", "cg",
        "--np", "4", "--class", "S", "--cache-dir", str(cache_dir),
    ]
    assert main(argv) == EXIT_OK
    first = capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == EXIT_OK
    stats = capsys.readouterr().out
    assert "entries: 3" in stats
    # warm rerun reproduces the same output from cache
    assert main(argv) == EXIT_OK
    assert capsys.readouterr().out == first
    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == EXIT_OK
    assert "removed 3" in capsys.readouterr().out


def test_cache_stats_empty_dir(tmp_path, capsys):
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "none")]) == EXIT_OK
    out = capsys.readouterr().out
    assert "entries: 0" in out


def test_cache_and_no_cache_flags_conflict(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "cg", "--cache", "--no-cache"])
    assert exc.value.code == EXIT_USAGE


def test_no_cache_overrides_env(monkeypatch, capsys):
    monkeypatch.setenv("PERFLOW_CACHE", "1")
    assert main(["run", "cg", "--np", "2", "--class", "S", "--no-cache"]) == EXIT_OK
    assert "ranks" in capsys.readouterr().out


def test_bad_cache_env_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv("PERFLOW_CACHE", "banana")
    with pytest.raises(SystemExit) as exc:
        main(["run", "cg", "--np", "2", "--class", "S"])
    assert exc.value.code == EXIT_USAGE
    assert "PERFLOW_CACHE" in capsys.readouterr().err


# ----------------------------------------------------------------------
# pag stats --load and clean error mapping
# ----------------------------------------------------------------------
def _saved_pag(tmp_path):
    from repro.apps import npb
    from repro.dataflow.api import PerFlow
    from repro.pag.serialize import save_pag

    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_cg("S", iterations=2), nprocs=4)
    path = tmp_path / "cg.json"
    save_pag(pag, path)
    return path


def test_pag_stats_load_file(tmp_path, capsys):
    path = _saved_pag(tmp_path)
    assert main(["pag", "stats", "--load", str(path)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "top-down view" in out
    assert "|V|=321" in out


def test_pag_stats_load_rejects_parallel(tmp_path, capsys):
    path = _saved_pag(tmp_path)
    with pytest.raises(SystemExit) as exc:
        main(["pag", "stats", "--load", str(path), "--parallel"])
    assert exc.value.code == EXIT_USAGE


def test_pag_stats_corrupt_file_is_clean_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": 2, "name": "x", trunc', "utf-8")
    with pytest.raises(SystemExit) as exc:
        main(["pag", "stats", "--load", str(bad)])
    assert exc.value.code == EXIT_USAGE
    err = capsys.readouterr().err
    assert "repro: error:" in err and str(bad) in err


def test_pag_stats_truncated_format2_is_clean_usage_error(tmp_path, capsys):
    bad = tmp_path / "trunc.json"
    bad.write_text('{"format": 2, "name": "x"}', "utf-8")
    with pytest.raises(SystemExit) as exc:
        main(["pag", "stats", "--load", str(bad)])
    assert exc.value.code == EXIT_USAGE
    assert "format-2" in capsys.readouterr().err


def test_pag_stats_oserror_is_clean_usage_error(tmp_path, capsys):
    # a directory path raises EISDIR on read; missing files ENOENT —
    # both used to escape as tracebacks
    adir = tmp_path / "adir"
    adir.mkdir()
    for target in (adir, tmp_path / "missing.json"):
        with pytest.raises(SystemExit) as exc:
            main(["pag", "stats", "--load", str(target)])
        assert exc.value.code == EXIT_USAGE
        assert "repro: error:" in capsys.readouterr().err


def test_run_dot_oserror_is_clean_usage_error(tmp_path, capsys):
    dot_dir = tmp_path / "out.dot"
    dot_dir.mkdir()  # writing to a directory path fails with EISDIR
    with pytest.raises(SystemExit) as exc:
        main(["run", "cg", "--np", "2", "--class", "S", "--dot", str(dot_dir)])
    assert exc.value.code == EXIT_USAGE
    assert "repro: error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# pag convert, --mmap, and --save-pag (out-of-core storage plumbing)
# ----------------------------------------------------------------------
def test_pag_convert_roundtrip_preserves_fingerprint(tmp_path, capsys):
    from repro.pag.serialize import detect_format, load_pag

    src = _saved_pag(tmp_path)  # format 2 JSON
    binpath = tmp_path / "cg.pag3"
    back = tmp_path / "cg-back.json"
    assert main(["pag", "convert", str(src), str(binpath)]) == EXIT_OK
    assert "format 3" in capsys.readouterr().out
    assert detect_format(binpath) == 3
    assert main(["pag", "convert", str(binpath), str(back), "--format", "2"]) == EXIT_OK
    assert detect_format(back) == 2
    fp = load_pag(src).fingerprint()
    assert load_pag(binpath, mmap=True).fingerprint() == fp
    assert load_pag(back).fingerprint() == fp


def test_pag_convert_corrupt_input_is_clean_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.pag3"
    bad.write_bytes(b"PAG3" + b"\xff" * 200)
    with pytest.raises(SystemExit) as exc:
        main(["pag", "convert", str(bad), str(tmp_path / "out.json")])
    assert exc.value.code == EXIT_USAGE
    err = capsys.readouterr().err
    assert "repro: error:" in err and str(bad) in err


def test_pag_stats_load_mmap_shows_segments(tmp_path, capsys):
    src = _saved_pag(tmp_path)
    binpath = tmp_path / "cg.pag3"
    assert main(["pag", "convert", str(src), str(binpath)]) == EXIT_OK
    capsys.readouterr()
    assert main(
        ["pag", "stats", "--load", str(binpath), "--mmap", "--json"]
    ) == EXIT_OK
    payload = json.loads(capsys.readouterr().out)
    disk = payload["on_disk"]
    assert disk["format"] == 3 and disk["mmap"] is True
    assert disk["lazy_columns"] > 0
    assert disk["header_bytes"] < disk["bytes"]
    assert "v_name" in disk["segments"]


def test_pag_stats_mmap_requires_format3(tmp_path, capsys):
    path = _saved_pag(tmp_path)  # JSON, not mmap-able
    with pytest.raises(SystemExit) as exc:
        main(["pag", "stats", "--load", str(path), "--mmap"])
    assert exc.value.code == EXIT_USAGE
    assert "format 3" in capsys.readouterr().err


def test_run_save_pag_writes_format3(tmp_path, capsys):
    from repro.pag.serialize import detect_format, load_pag

    out = tmp_path / "run.pag3"
    assert main(
        ["run", "cg", "--np", "4", "--class", "S",
         "--save-pag", str(out), "--pag-format", "3"]
    ) == EXIT_OK
    assert out.exists() and detect_format(out) == 3
    assert load_pag(out, mmap=True).num_vertices == 321

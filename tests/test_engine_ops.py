"""Engine/interpreter coverage for the remaining MPI operations."""

import pytest

from repro.ir.model import (
    Branch,
    CommCall,
    CommOp,
    Function,
    Program,
    Stmt,
)
from repro.runtime.executor import run_program


def one_op_program(op, **kwargs):
    p = Program(name=f"op-{op.value}")
    p.add_function(
        Function(
            "main",
            [
                Stmt("w", cost=lambda ctx: 0.001 * (1 + ctx.rank)),
                CommCall(op, nbytes=kwargs.pop("nbytes", 64), **kwargs),
            ],
        )
    )
    return p


@pytest.mark.parametrize(
    "op",
    [CommOp.BARRIER, CommOp.BCAST, CommOp.REDUCE, CommOp.ALLREDUCE, CommOp.ALLGATHER, CommOp.ALLTOALL],
)
def test_each_collective_runs_and_synchronizes(op):
    run = run_program(one_op_program(op), nprocs=5)
    [ev] = run.comm_events
    assert ev.op is op
    assert len(ev.participants) == 5
    # the slowest rank (rank 4's compute is largest) arrives last
    assert ev.src_rank == 4
    # everyone finishes at the same collective completion time
    finish = set(round(t, 12) for t in run.per_rank_elapsed.values())
    assert len(finish) == 1


def test_collective_wait_attribution_sums():
    run = run_program(one_op_program(CommOp.ALLREDUCE), nprocs=4)
    [ev] = run.comm_events
    waits = {r: w for (r, _p, _a, w) in ev.participants}
    assert waits[3] == 0.0
    assert waits[0] > waits[1] > waits[2] > 0


def test_blocking_send_recv_pair_via_interpreter():
    p = Program(name="pair")
    p.add_function(
        Function(
            "main",
            [
                Branch(
                    lambda ctx: ctx.rank == 0,
                    then_body=[
                        Stmt("slow", cost=0.01),
                        CommCall(CommOp.SEND, peer=1, nbytes=2e6, name="MPI_Send"),
                    ],
                    else_body=[CommCall(CommOp.RECV, peer=0, nbytes=2e6, name="MPI_Recv")],
                )
            ],
        )
    )
    run = run_program(p, nprocs=2)
    [ev] = run.comm_events
    assert ev.op is CommOp.RECV
    assert (ev.src_rank, ev.dst_rank) == (0, 1)
    # the receiver waited for the slow sender
    assert ev.wait_time == pytest.approx(0.01, rel=0.05)


def test_wait_on_named_request():
    p = Program(name="named")
    p.add_function(
        Function(
            "main",
            [
                CommCall(CommOp.ISEND, peer=lambda c: (c.rank + 1) % c.nprocs, nbytes=64, req="a"),
                CommCall(CommOp.IRECV, peer=lambda c: (c.rank - 1) % c.nprocs, nbytes=64, req="b"),
                CommCall(CommOp.WAIT, requests=("b",), name="MPI_Wait"),
                CommCall(CommOp.WAITALL, name="MPI_Waitall"),  # completes "a"
            ],
        )
    )
    run = run_program(p, nprocs=3)
    assert len(run.comm_events) == 3
    # every event surfaced at the named Wait (its dst path ends at MPI_Wait)
    assert run.elapsed > 0


def test_interpreter_rejects_unhandled_wait_reuse():
    """Waiting twice on the same completed request must fail loudly."""
    p = Program(name="reuse")
    p.add_function(
        Function(
            "main",
            [
                CommCall(CommOp.ISEND, peer=0, nbytes=8, req="x"),
                CommCall(CommOp.IRECV, peer=0, nbytes=8, req="y"),
                CommCall(CommOp.WAIT, requests=("x", "y")),
                CommCall(CommOp.WAIT, requests=("x",), name="MPI_Wait2"),
            ],
        )
    )
    # after the first wait, "x" is consumed; the second wait has nothing
    # outstanding under that label -> empty label set -> completes at once
    run = run_program(p, nprocs=1)
    assert run.elapsed > 0


def test_edgeset_select_comm_kind():
    from repro.pag.edge import CommKind, EdgeLabel
    from repro.pag.graph import PAG
    from repro.pag.vertex import VertexLabel

    g = PAG()
    g.add_vertex(VertexLabel.INSTRUCTION, "a")
    g.add_vertex(VertexLabel.INSTRUCTION, "b")
    g.add_edge(0, 1, EdgeLabel.INTER_PROCESS, CommKind.COLLECTIVE)
    g.add_edge(0, 1, EdgeLabel.INTER_PROCESS, CommKind.P2P_ASYNC)
    assert len(g.es_all.select(comm_kind=CommKind.COLLECTIVE)) == 1


def test_vertex_metrics_iterator():
    from repro.pag.vertex import Vertex, VertexLabel

    v = Vertex(0, VertexLabel.INSTRUCTION, "x", properties={"time": 1.0, "tag": "str", "count": 3})
    assert set(v.metrics) == {"time", "count"}


def test_vertex_call_kind_validation():
    from repro.ir.model import CallTarget  # noqa: F401 - import sanity
    from repro.pag.vertex import CallKind, Vertex, VertexLabel

    with pytest.raises(ValueError):
        Vertex(0, VertexLabel.LOOP, "l", call_kind=CallKind.COMM)

"""Tests for PAG serialization and the space-cost accounting."""

import numpy as np
import pytest

from repro.pag.serialize import (
    load_pag,
    pag_from_dict,
    pag_to_dict,
    save_pag,
    storage_size,
)
from repro.pag.views import build_top_down_view
from repro.runtime.executor import run_program

from tests.conftest import make_ring_program


@pytest.fixture
def embedded_pag():
    prog = make_ring_program()
    run = run_program(prog, nprocs=4)
    td, _ = build_top_down_view(prog, run)
    return td


def test_roundtrip_structure(embedded_pag):
    g2 = pag_from_dict(pag_to_dict(embedded_pag))
    assert g2.num_vertices == embedded_pag.num_vertices
    assert g2.num_edges == embedded_pag.num_edges
    for v1, v2 in zip(embedded_pag.vertices(), g2.vertices()):
        assert (v1.name, v1.label, v1.call_kind) == (v2.name, v2.label, v2.call_kind)
    for e1, e2 in zip(embedded_pag.edges(), g2.edges()):
        assert (e1.src_id, e1.dst_id, e1.label) == (e2.src_id, e2.dst_id, e2.label)


def test_compact_form_summarizes_per_rank(embedded_pag):
    g2 = pag_from_dict(pag_to_dict(embedded_pag, include_per_rank=False))
    root = g2.vertex(0)
    summary = root["time_per_rank"]
    assert isinstance(summary, dict)
    assert {"min", "max", "mean", "imbalance"} <= set(summary)
    assert summary["max"] >= summary["mean"] >= summary["min"]


def test_full_form_roundtrips_per_rank(embedded_pag):
    g2 = pag_from_dict(pag_to_dict(embedded_pag, include_per_rank=True))
    orig = embedded_pag.vertex(0)["time_per_rank"]
    back = g2.vertex(0)["time_per_rank"]
    assert isinstance(back, np.ndarray)
    assert np.allclose(orig, back, atol=1e-8)


def test_scalar_metrics_preserved(embedded_pag):
    g2 = pag_from_dict(pag_to_dict(embedded_pag))
    assert g2.vertex(0)["time"] == pytest.approx(embedded_pag.vertex(0)["time"], rel=1e-6)


def test_save_load(tmp_path, embedded_pag):
    path = tmp_path / "pag.json"
    nbytes = save_pag(embedded_pag, path)
    assert nbytes == path.stat().st_size
    g2 = load_pag(path)
    assert g2.num_vertices == embedded_pag.num_vertices
    assert g2.name == embedded_pag.name


def test_storage_size_consistent_with_save(tmp_path, embedded_pag):
    assert storage_size(embedded_pag) == save_pag(embedded_pag, tmp_path / "x.json")


def test_compact_smaller_than_full_at_scale():
    # the summary beats full vectors once there are more than a few ranks
    prog = make_ring_program()
    run = run_program(prog, nprocs=16)
    td, _ = build_top_down_view(prog, run)
    assert storage_size(td) < storage_size(td, include_per_rank=True)


def test_metadata_filtered_to_json_safe(embedded_pag):
    embedded_pag.metadata["weird"] = object()
    d = pag_to_dict(embedded_pag)
    assert "weird" not in d["metadata"]
    assert d["metadata"]["nprocs"] == 4

"""Linting the modelled applications: the paper's injected bugs are
statically visible, and no app trips an ERROR-severity rule."""

import pytest

from repro.apps import lammps, registry, vite, zeusmp
from repro.lint import LintConfig, Severity, lint_program

APP_NAMES = sorted(registry("S"))


@pytest.mark.parametrize("name", APP_NAMES)
def test_no_app_has_error_diagnostics(name):
    report = lint_program(registry("S")[name]())
    assert report.count_at_least(Severity.ERROR) == 0, report.to_text()


def test_zeusmp_imbalance_is_statically_visible():
    report = lint_program(zeusmp.build())
    pf006 = report.by_code("PF006")
    assert pf006, report.to_text()
    assert {d.file for d in pf006} == {"bvald.F", "newdt.F"}
    assert any(d.function == "bvald" and d.line == 360 for d in pf006)


def test_zeusmp_optimized_variant_is_clean():
    report = lint_program(zeusmp.build(), LintConfig(params={"optimized": True}))
    assert report.by_code("PF006") == []


def test_lammps_blocking_send_is_statically_visible():
    report = lint_program(lammps.build())
    pf001 = report.by_code("PF001")
    assert pf001, report.to_text()
    assert all(d.file == "comm_brick.cpp" for d in pf001)
    assert any("MPI_Send" in d.message for d in pf001)
    # the heavy-rank skew in the pair kernel also shows up
    assert any(d.file == "pair_lj_cut.cpp" for d in report.by_code("PF006"))


def test_lammps_balanced_variant_keeps_send_but_loses_skew():
    report = lint_program(lammps.build(), LintConfig(params={"balanced": True}))
    assert report.by_code("PF001")  # the blocking send is structural
    assert report.by_code("PF006") == []


def test_vite_allocator_contention_is_statically_visible():
    report = lint_program(vite.build())
    pf004 = report.by_code("PF004")
    assert pf004, report.to_text()
    assert {d.file for d in pf004} == {"louvain.cpp"}
    assert all("allocator" in d.message for d in pf004)


def test_lu_pipelined_sweep_flags_blocking_p2p_only():
    # LU's guarded pipelined sweeps use genuinely blocking Send/Recv: a
    # true smell (PF001) but statically matchable (no PF002 deadlock).
    report = lint_program(registry("S")["lu"]())
    assert report.by_code("PF001")
    assert report.by_code("PF002") == []


def test_reports_are_deterministic():
    a = lint_program(zeusmp.build()).to_json()
    b = lint_program(zeusmp.build()).to_json()
    assert a == b

"""Fault injection for the multiprocessing backend.

The process pool adds failure modes threads cannot have: a worker can
die without returning (SIGKILL, OOM-kill), a shared-memory attach can
fail (segment gone, fingerprint mismatch), and results can be lost in
transit.  Each must surface as a deterministic, well-typed error in the
coordinator — and none may leak ``/dev/shm`` segments, whatever the
exit path.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.dataflow import procpool
from repro.dataflow.graph import PerFlowGraph
from repro.dataflow.procpool import ShmAttachError, WorkerCrashed
from repro.pag.edge import EdgeLabel
from repro.pag.sets import VertexSet
from repro.pag.graph import PAG
from repro.pag.vertex import VertexLabel


def make_pag(name: str = "g", n: int = 6) -> PAG:
    pag = PAG(name)
    for i in range(n):
        pag.add_vertex(
            VertexLabel.FUNCTION,
            f"f{i}",
            None,
            {"time": float(i), "debug-info": f"s.c:{i}"},
        )
    for i in range(n - 1):
        pag.add_edge(i, i + 1, EdgeLabel.INTRA_PROCEDURAL, None, {"weight": 1.0})
    return pag


def _shm_segments() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-Linux fallback
        return set()


@pytest.fixture
def shm_guard():
    """Assert the run under test leaks no shared-memory segments."""
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def _keep_all(s):
    return VertexSet(list(s))


def _die(s):
    os.kill(os.getpid(), signal.SIGKILL)


def _poison(s):
    raise ValueError("poisoned pass")


def _pag_pipeline(fn_mid):
    """input → keep → <fn_mid> → names; PAG-backed so workers attach."""
    g = PerFlowGraph("faulty")
    V = g.input("V", VertexSet)
    a = g.add_pass(_keep_all, V, name="keep")
    b = g.add_pass(fn_mid, a, name="mid")
    g.add_pass(lambda s: [v.name for v in s], b, name="names")
    return g


# ----------------------------------------------------------------- crash
def test_sigkilled_worker_raises_worker_crashed(shm_guard):
    pag = make_pag()
    g = _pag_pipeline(_die)
    with pytest.raises(WorkerCrashed) as exc:
        g.run(jobs=2, backend="process", V=pag.vs)
    # the error names the in-flight node so the user can bisect
    assert "mid" in str(exc.value)


def test_crash_counts_metric_and_semantic_errors_win(shm_guard):
    """A plain raising pass beats WorkerCrashed taxonomy: the original
    exception type/message surface, exactly as the serial run raises."""
    pag = make_pag()
    with pytest.raises(ValueError) as serial_exc:
        _pag_pipeline(_poison).run(jobs=1, V=pag.vs)
    with pytest.raises(ValueError) as proc_exc:
        _pag_pipeline(_poison).run(jobs=2, backend="process", V=pag.vs)
    assert str(proc_exc.value) == str(serial_exc.value) == "poisoned pass"
    assert type(proc_exc.value) is ValueError


# ---------------------------------------------------------------- attach
def test_shm_attach_failure_is_fatal_and_typed(shm_guard, monkeypatch):
    """If a worker cannot attach a published segment, the run fails with
    ShmAttachError (environmental, not semantic) rather than hanging or
    silently recomputing."""

    def broken_attach(name, fp):
        raise ShmAttachError(f"injected attach failure for {name}")

    # Workers fork at pool creation inside run(); they inherit the
    # patched module, so every attach attempt fails.
    monkeypatch.setattr(procpool, "_attach_segment", broken_attach)
    pag = make_pag()
    g = _pag_pipeline(_keep_all)
    with pytest.raises(ShmAttachError) as exc:
        g.run(jobs=2, backend="process", V=pag.vs)
    assert "injected attach failure" in str(exc.value)


# ----------------------------------------------------------------- leaks
def test_successful_run_unregisters_every_segment(monkeypatch, shm_guard):
    """Parent-side resource_tracker bookkeeping balances: every segment
    registered at publish time is unregistered by the unlink in the
    run's finally block (the tracker would otherwise warn at exit)."""
    from multiprocessing import resource_tracker

    events = []
    real_register = resource_tracker.register
    real_unregister = resource_tracker.unregister

    def register(name, rtype):
        if rtype == "shared_memory":
            events.append(("register", name))
        return real_register(name, rtype)

    def unregister(name, rtype):
        if rtype == "shared_memory":
            events.append(("unregister", name))
        return real_unregister(name, rtype)

    monkeypatch.setattr(resource_tracker, "register", register)
    monkeypatch.setattr(resource_tracker, "unregister", unregister)

    pag = make_pag()
    out = _pag_pipeline(_keep_all).run(jobs=2, backend="process", V=pag.vs)
    assert out["names"] == [f"f{i}" for i in range(6)]

    registered = [n for (kind, n) in events if kind == "register"]
    unregistered = [n for (kind, n) in events if kind == "unregister"]
    assert registered, "expected at least one published segment"
    assert sorted(registered) == sorted(unregistered)


def test_crashed_run_leaks_no_segments():
    """The finally-block unlink runs even when the pool breaks."""
    before = _shm_segments()
    pag = make_pag()
    with pytest.raises(WorkerCrashed):
        _pag_pipeline(_die).run(jobs=2, backend="process", V=pag.vs)
    assert _shm_segments() - before == set()


# ---------------------------------------------------------------- ledger
def test_ledger_record_consistent_after_crash(tmp_path):
    """A crashed process run still yields a coherent ledger record:
    JSON-safe, nonzero exit code, rollups for the nodes that did run."""
    from repro.obs import trace as obs_trace
    from repro.obs.ledger import Ledger, build_run_record

    pag = make_pag()
    rec = obs_trace.enable()
    try:
        with pytest.raises(WorkerCrashed):
            _pag_pipeline(_die).run(jobs=2, backend="process", V=pag.vs)
    finally:
        obs_trace.disable()

    record = build_run_record(
        "run",
        ["run", "faulty", "--jobs", "2", "--backend", "process"],
        program="faulty",
        params={"jobs": 2, "backend": "process"},
        recorder=rec,
        exit_code=1,
        pag_fingerprints=[pag.fingerprint()],
    )
    json.dumps(record)  # JSON-safe despite the abnormal exit
    assert record["exit_code"] == 1
    assert record["params"]["backend"] == "process"

    led = Ledger(str(tmp_path / "led"))
    led.append(record)
    fetched = led.get(record["run_id"])
    assert fetched["identity"] == record["identity"]
    assert fetched["pag_fingerprints"] == [pag.fingerprint()]

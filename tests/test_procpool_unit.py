"""In-process unit tests for the procpool machinery.

The integration tier (`test_procpool_faults.py`, the cross-backend
property suite) exercises forked pools end to end; these tests call the
worker-side functions — publish, attach, transfer encode/decode,
`_worker_run`, span merge — directly in the test process, where
failures are debuggable and line coverage is visible to the CI
coverage gate (coverage.py cannot see into forked children).
"""

from __future__ import annotations

import gc

import pytest

from repro.dataflow import procpool
from repro.dataflow.graph import PerFlowGraph
from repro.dataflow.procpool import (
    NotTransferable,
    ShmAttachError,
    _AttachRegistry,
    _Payload,
    _PAYLOADS,
    _WORKER_STATES,
    _merge_spans,
    _worker_run,
    collect_pags,
    decode_transfer,
    encode_transfer,
    publish_pags,
    unpublish_pags,
)
from repro.obs import trace as obs_trace
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.pag.vertex import VertexLabel


def make_pag(name: str = "g", n: int = 6) -> PAG:
    pag = PAG(name)
    for i in range(n):
        pag.add_vertex(
            VertexLabel.FUNCTION,
            f"f{i}",
            None,
            {"time": float(i), "debug-info": f"s.c:{i}"},
        )
    for i in range(n - 1):
        pag.add_edge(i, i + 1, EdgeLabel.INTRA_PROCEDURAL, None, {"weight": 1.0})
    return pag


@pytest.fixture
def published():
    """One published PAG; yields (pag, fp, segments) and always unlinks."""
    pag = make_pag()
    fp = pag.fingerprint()
    segments = publish_pags({fp: pag})
    assert list(segments) == [fp]
    try:
        yield pag, fp, segments
    finally:
        unpublish_pags(segments)


# ----------------------------------------------------------------- collect
def test_collect_pags_walks_containers():
    a, b = make_pag("a"), make_pag("b", n=3)
    found = collect_pags({"x": (a.vs, [b]), "y": a})
    assert set(found) == {a.fingerprint(), b.fingerprint()}
    assert found[a.fingerprint()] is a


def test_collect_pags_ignores_legacy_sets():
    a, b = make_pag("a"), make_pag("b", n=3)
    legacy = VertexSet(list(a.vs) + list(b.vs))  # mixed graphs: legacy mode
    assert legacy._els is not None
    assert collect_pags(legacy) == {}


# ------------------------------------------------------------------ attach
def test_attach_roundtrip_zero_copy_readonly(published):
    pag, fp, segments = published
    shm, twin = procpool._attach_segment(segments[fp].name, fp)
    try:
        assert twin.fingerprint() == fp
        assert twin.num_vertices == pag.num_vertices
        assert [v.name for v in twin.vs] == [v.name for v in pag.vs]
        # a write promotes the column copy-on-write, locally only
        twin.vertex(0)["time"] = 99.0
        assert twin.vertex(0)["time"] == 99.0
        assert pag.vertex(0)["time"] == 0.0
    finally:
        # in-process only: the twin's views point into shm.buf, so they
        # must be gone before close() (real workers just exit instead)
        del twin
        gc.collect()
        shm.close()


def test_attach_rejects_fingerprint_mismatch(published):
    _, fp, segments = published
    with pytest.raises(ShmAttachError) as exc:
        procpool._attach_segment(segments[fp].name, "0" * len(fp))
    assert "fingerprint" in str(exc.value)


def test_attach_rejects_missing_segment():
    with pytest.raises(ShmAttachError):
        procpool._attach_segment("psm_does_not_exist_xyzzy", "00")


def test_attach_registry_is_lazy_and_memoizing(published):
    _, fp, segments = published
    reg = _AttachRegistry({fp: segments[fp].name})
    assert reg.get("unknown-fingerprint") is None
    first = reg.get(fp)
    assert first is not None and first.fingerprint() == fp
    assert reg.get(fp) is first  # attached once, cached
    shms = reg._shms
    del first, reg  # drop the twins' buffer views before closing
    gc.collect()
    for shm in shms:
        shm.close()


# ---------------------------------------------------------------- transfer
def test_transfer_roundtrip_rebinds_sets_and_pags(published):
    pag, fp, _ = published
    fps = frozenset([fp])
    value = {"hot": pag.vs, "graph": pag, "names": ["a", "b"]}
    entry = encode_transfer(value, fps)
    back = decode_transfer(entry, {fp: pag})
    assert back["graph"] is pag  # marker resolved to the live object
    assert list(back["hot"].ids()) == list(pag.vs.ids())
    assert back["hot"]._pag is pag
    assert back["names"] == ["a", "b"]


def test_transfer_refuses_unpublished_pag():
    pag = make_pag()
    with pytest.raises(NotTransferable):
        encode_transfer(pag, frozenset())
    with pytest.raises(NotTransferable):
        encode_transfer(pag.vs, frozenset())


def test_transfer_refuses_legacy_sets(published):
    pag, fp, _ = published
    other = make_pag("other", n=3)
    legacy = VertexSet(list(pag.vs) + list(other.vs))
    assert legacy._els is not None
    with pytest.raises(NotTransferable):
        encode_transfer(legacy, frozenset([fp, other.fingerprint()]))


def test_decode_refuses_unknown_fingerprint(published):
    pag, fp, _ = published
    entry = encode_transfer(pag.vs, frozenset([fp]))
    with pytest.raises(NotTransferable):
        decode_transfer(entry, {})  # no live graph to rebind against


# -------------------------------------------------------------- worker run
@pytest.fixture
def worker_token(published):
    """A fake fork: install a payload slot as the coordinator would."""
    pag, fp, segments = published
    g = PerFlowGraph("unit")
    V = g.input("V", VertexSet)
    hot = g.add_pass(
        lambda s: VertexSet([v for v in s if (v["time"] or 0.0) > 2.0]),
        V,
        name="hot",
    )
    g.add_fixpoint(lambda s: s, hot, max_iters=4, name="settle")
    token = next(procpool._TOKENS)
    _PAYLOADS[token] = _Payload(g, {fp: segments[fp].name})
    try:
        yield token, g, pag, fp
    finally:
        state = _WORKER_STATES.pop(token, None)
        _PAYLOADS.pop(token, None)
        if state is not None:
            shms = state.registry._shms
            del state  # drop the twins' buffer views before closing
            gc.collect()
            for shm in shms:
                shm.close()


def test_worker_run_executes_and_reencodes(worker_token):
    token, g, pag, fp = worker_token
    nid = next(n.node_id for n in g._nodes if n.name == "hot")
    entry = encode_transfer((pag.vs,), frozenset([fp]))
    result, meta = _worker_run(token, nid, entry, want_spans=False)
    value = decode_transfer(result, {fp: pag})
    assert [v.name for v in value] == ["f3", "f4", "f5"]
    assert value._pag is pag  # rebound against the live graph
    assert meta["extra"] == {}
    assert meta["pid"] > 0


def test_worker_run_fixpoint_reports_convergence(worker_token):
    token, g, pag, fp = worker_token
    nid = next(n.node_id for n in g._nodes if n.name == "settle")
    entry = encode_transfer((pag.vs,), frozenset([fp]))
    _result, meta = _worker_run(token, nid, entry, want_spans=False)
    assert meta["extra"]["converged"] is True
    assert meta["extra"]["iterations"] >= 1


def test_worker_run_span_batch_merges_into_parent(worker_token):
    token, g, pag, fp = worker_token
    nid = next(n.node_id for n in g._nodes if n.name == "hot")
    entry = encode_transfer((pag.vs,), frozenset([fp]))
    _result, meta = _worker_run(token, nid, entry, want_spans=True)
    batch = meta["spans"]
    assert [s["name"] for s in batch] == ["node:hot"]
    assert batch[0]["args"]["worker"].startswith("pid-")

    rec = obs_trace.enable()
    try:
        with obs_trace.span("pipeline:unit", category="dataflow"):
            parent = obs_trace.current_span()
            merged = _merge_spans(batch, parent, pid=4242)
    finally:
        obs_trace.disable()
    assert len(merged) == 1
    span = rec.find("node:hot")[0]
    assert span.tid == 4242
    assert span in rec.find("pipeline:unit")[0].children


def test_merge_spans_noop_without_recorder():
    assert _merge_spans([{"name": "x"}], None, pid=1) == []

"""End-to-end integration tests: the paper's listings, executed verbatim-ish."""

import io

import pytest

from repro.apps import npb, zeusmp
from repro.dataflow.api import PerFlow
from repro.pag.sets import EdgeSet, VertexSet


def test_listing1_communication_task():
    """Listing 1, line for line, on an MPI kernel."""
    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_cg("S", iterations=3), cmd="mpirun -np 8 ./a.out")
    V_comm = pflow.filter(pag.V, name="MPI_*")
    V_hot = pflow.hotspot_detection(V_comm)
    V_imb = pflow.imbalance_analysis(V_hot)
    V_bd = pflow.breakdown_analysis(V_imb)
    attrs = ["name", "comm-info", "debug-info", "time"]
    report = pflow.report(V_imb, V_bd, attrs=attrs)
    assert len(V_comm) > 0
    assert len(V_hot) <= 10
    assert report.to_text()


def test_listing7_scalability_paradigm_user_pass():
    """Listing 7's structure: built-in passes + a user-defined pass
    written against the low-level API."""
    pflow = PerFlow()
    prog = zeusmp.build(steps=2)
    pag_p4 = pflow.run(bin=prog, cmd="mpirun -np 4 ./a.out")
    pag_p64 = pflow.run(bin=prog, cmd="mpirun -np 64 ./a.out")

    # Part 1: user-defined backtracking pass (low-level API)
    def backtracking_analysis(V):
        V_bt, E_bt, S = [], [], set()
        for v in V:
            if v.id in S:
                continue
            S.add(v.id)
            in_es = v.es.select(pflow.IN_EDGE, of=v)
            while len(in_es) != 0 and v["name"] not in pflow.COLL_COMM:
                if v["type"] == pflow.MPI:
                    e = in_es.select(type=pflow.COMM) or in_es
                elif v["type"] in (pflow.LOOP, pflow.BRANCH):
                    e = in_es.select(type=pflow.CTRL_FLOW) or in_es
                else:
                    e = in_es.select(type=pflow.DATA_FLOW) or in_es
                V_bt.append(v)
                E_bt.append(e[0])
                v = e[0].src
                if v.id in S:
                    break
                S.add(v.id)
                in_es = v.es.select(pflow.IN_EDGE, of=v)
        return VertexSet(V_bt), EdgeSet(E_bt)

    # Part 2: the PerFlowGraph of the paradigm
    V1, V2 = pag_p64.vs, pag_p4.vs
    V_diff = pflow.differential_analysis(V1, V2)
    V_hot = pflow.hotspot_detection(V_diff)
    V_imb = pflow.imbalance_analysis(V_diff)
    V_union = pflow.union(V_hot, V_imb)
    inst = pflow.instances(V_union, pag_p64, max_ranks=32)
    V_bt, E_bt = backtracking_analysis(inst)
    attrs = ["name", "time", "debug-info", "cycles"]
    report = pflow.report([V_bt, E_bt], attrs=attrs)

    assert len(V_diff) == pag_p64.num_vertices
    assert len(V_union) >= len(V_hot)
    assert len(V_bt) > 0 and len(E_bt) > 0
    assert "set 1" in report.to_text()


def test_case_study_a_pipeline_detects_bvald_imbalance():
    """The qualitative claim of §5.3: the imbalanced bvald loop instances
    are detected, and backtracking connects them to the waitall chain."""
    from repro.paradigms import scalability_analysis_paradigm

    pflow = PerFlow()
    prog = zeusmp.build(steps=2)
    small = pflow.run(bin=prog, nprocs=4)
    large = pflow.run(bin=prog, nprocs=32)
    res = scalability_analysis_paradigm(pflow, small, large, max_ranks=32)
    diff_names = {v.name for v in res.V_hot}
    assert diff_names & {"mpi_waitall_", "mpi_allreduce_", "loop_1", "nudt", "main"}
    path_names = {v.name for v in res.V_bt}
    assert "mpi_waitall_" in path_names
    # the propagation chain reaches compute preceding the waits
    assert path_names & {"bc_update", "loop_10.1", "loop_10", "bvald"}


def test_interactive_mode_flow():
    """§4.5's 'interactive mode': run a general pass, inspect, refine."""
    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_mg("S", iterations=2), nprocs=8)
    hot = pflow.hotspot_detection(pag.V, n=20)
    assert len(hot) == 20
    # insight: communication shows up -> refine with a comm filter
    comm_hot = pflow.comm_filter(hot)
    refined = pflow.imbalance_analysis(comm_hot, threshold=1.05)
    report = pflow.report(refined, attrs=["name", "time", "imbalance"], file=io.StringIO())
    assert report is not None


def test_perflowgraph_declarative_equivalent():
    """The same Listing 1 task expressed as a declarative PerFlowGraph."""
    pflow = PerFlow()
    pag = pflow.run(bin=npb.build_cg("S", iterations=3), nprocs=8)
    g = pflow.perflowgraph("comm-analysis")
    V_in = g.input("V")
    comm = g.add_pass(pflow.comm_filter, V_in, name="filter")
    hot = g.add_pass(lambda V: pflow.hotspot_detection(V, n=5), comm, name="hotspot")
    imb = g.add_pass(pflow.imbalance_analysis, hot, name="imbalance")
    g.add_pass(pflow.breakdown_analysis, imb, name="breakdown")
    out = g.run(V=pag.vs)
    assert len(out["filter"]) >= len(out["hotspot"]) >= len(out["imbalance"])
    assert "digraph" in g.to_dot()

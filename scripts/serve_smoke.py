#!/usr/bin/env python
"""CI smoke test for ``repro serve``: real process, real sockets.

Starts the server as an operator would (``python -m repro serve``),
drives concurrent load — including two byte-identical requests that
must collapse onto one execution — then sends SIGTERM and checks for a
clean drain (exit code 0) and, with ``--backend process``, that no
shared-memory segments leaked.

Usage::

    python scripts/serve_smoke.py [--backend thread|process] [--jobs N]

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
sys.path.insert(0, _SRC)

from repro.dataflow.api import PerFlow  # noqa: E402
from repro.pag.formats import save_pag  # noqa: E402
from repro.serve.client import analyze, http_request, wait_ready  # noqa: E402

_ANNOUNCE = re.compile(r"serving on ([\d.]+):(\d+)")


def _fail(msg: str) -> "NoReturn":  # noqa: F821 - py39-safe comment type
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _smoke_pag_file(workdir: str) -> str:
    from repro.apps import microbench  # local import: needs sys.path set up

    pag = PerFlow().run(bin=microbench.build(), nprocs=4)
    path = os.path.join(workdir, "smoke.pag")
    save_pag(pag, path, format=3)
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="thread", choices=["thread", "process"])
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as workdir:
        pag_path = _smoke_pag_file(workdir)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--backend",
                args.backend,
                "--jobs",
                str(args.jobs),
                "--cache-dir",
                os.path.join(workdir, "cache"),
                "--ledger-dir",
                os.path.join(workdir, "ledger"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            },
        )
        try:
            deadline = time.monotonic() + 30.0
            host, port = "", 0
            while time.monotonic() < deadline and not port:
                line = proc.stdout.readline()
                if not line and proc.poll() is not None:
                    _fail(f"server exited rc={proc.poll()}: {proc.stderr.read()[-2000:]}")
                m = _ANNOUNCE.search(line or "")
                if m:
                    host, port = m.group(1), int(m.group(2))
            if not port:
                proc.kill()
                _fail("server never announced its address")
            wait_ready(host, port)

            status, _h, body = http_request(host, port, "GET", "/healthz")
            if status != 200:
                _fail(f"healthz returned {status}: {body!r}")

            # Concurrent load: distinct pipelines plus TWO byte-identical
            # requests (same pipeline, params, PAG) that must collapse.
            payloads = [
                {"pipeline": "hotspot", "pag_path": pag_path},
                {"pipeline": "mpi_profiler", "pag_path": pag_path},
                {"pipeline": "imbalance", "pag_path": pag_path},
                {"pipeline": "hotspot", "params": {"top": 3}, "pag_path": pag_path},
                {"pipeline": "hotspot", "params": {"top": 3}, "pag_path": pag_path},
            ]
            with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
                results = list(
                    pool.map(lambda p: analyze(host, port, p, timeout=60.0), payloads)
                )
            collapsed_seen = 0
            for payload, (status, events) in zip(payloads, results):
                if status != 200:
                    _fail(f"{payload['pipeline']}: status {status}: {events}")
                last = events[-1]
                if last.get("event") != "result":
                    _fail(f"{payload['pipeline']}: no result event: {last}")
                collapsed_seen += 1 if last.get("collapsed") else 0
            if collapsed_seen != 1:
                _fail(
                    f"expected exactly 1 collapsed response from the identical "
                    f"pair, saw {collapsed_seen}"
                )

            status, _h, body = http_request(host, port, "GET", "/metrics")
            metrics = json.loads(body)
            counters = metrics.get("counters", {})
            if counters.get("serve.requests", 0) < len(payloads):
                _fail(f"serve.requests missing or low: {counters}")
            if counters.get("serve.collapsed", 0) != 1:
                _fail(f"serve.collapsed != 1: {counters}")

            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                _fail("server did not drain within 30s of SIGTERM")
            if rc != 0:
                _fail(f"SIGTERM drain exited {rc}: {proc.stderr.read()[-2000:]}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if shm_before is not None:
        leaked = set(os.listdir("/dev/shm")) - shm_before
        if leaked:
            _fail(f"leaked shm segments after drain: {sorted(leaked)}")

    print(f"serve-smoke: OK (backend={args.backend})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
